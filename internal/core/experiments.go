package core

import (
	"plum/internal/adapt"
	"plum/internal/dual"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/obs"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/remap"
)

// Experiments bundles the fixed inputs of the paper's evaluation
// (Section 5) so that cmd/plumbench, the benchmarks, and the tests all
// regenerate the same tables and figures from one place.
type Experiments struct {
	Global *mesh.Mesh
	Dual   *dual.Graph
	Model  *msg.CostModel
	Cfg    Config
	LX, LY float64 // box extents (indicator geometry)
	Cases  []CaseSpec
	Ps     []int

	// ModelName selects a machine topology (machine.ByName) for every
	// simulated run; empty keeps the pre-machine-layer uniform SP2.
	ModelName string

	// Measured turns on the measured-cost feedback loop for the
	// experiments that drive full adaption epochs (ImplicitScaling):
	// runs execute traced, each epoch's gain/cost decision is priced by
	// the previous epoch's profile, and the quick evaluation really
	// gates rebalancing (ForceAccept off).  Off, every experiment keeps
	// the analytic pricing bitwise.
	Measured bool

	// Obs, when non-nil, is the run ledger the epoch-driving experiments
	// append to: each cycle becomes one obs.EpochRecord on rank 0, with
	// the measured cost decomposition attached (epoch runs execute traced
	// whenever Obs is set).  Recording is observation-only — all
	// simulated outputs stay bitwise identical to an unobserved run
	// unless Measured also changes the decisions.
	Obs *obs.Ledger

	// Spans, when non-nil, streams every epoch-driving world's phase
	// spans and per-epoch wait-blame summaries into one span file
	// (epoch runs execute traced whenever Spans is set, exactly as with
	// Obs).  Like the ledger, span recording is observation-only and
	// the file's bytes are deterministic: worlds stream into private
	// buffers that flush after the barrier, in loop order.
	Spans *SpanSink

	initParts map[int][]int32 // cached initial partition per P
}

// UseMachine selects the named machine topology for all subsequent
// experiment runs.  The empty name restores the uniform (flat-scalar)
// machine — the exact pre-machine-layer cost path.  Cached initial
// partitions are discarded: a heterogeneous machine partitions with
// speed-scaled target loads, so partitions are machine-specific.
func (e *Experiments) UseMachine(name string) error {
	if name != "" {
		if _, err := machine.ByName(name, 2); err != nil {
			return err
		}
	}
	e.ModelName = name
	e.initParts = make(map[int][]int32)
	return nil
}

// modelFor returns the cost model for a p-rank run: the scalar model
// when no topology is selected, otherwise a copy carrying a fresh
// instance of the named topology sized for p ranks (fresh contention
// state per run).
func (e *Experiments) modelFor(p int) *msg.CostModel {
	if e.ModelName == "" {
		return e.Model
	}
	topo, err := machine.ByName(e.ModelName, p)
	if err != nil {
		panic(err) // unreachable: UseMachine validated the name
	}
	return e.Model.WithTopo(topo)
}

// CaseSpec names a refinement strategy: the fraction of the initial
// mesh's edges targeted for subdivision (paper: Real_1 = 5%, Real_2 =
// 33%, Real_3 = 60%).
type CaseSpec struct {
	Name string
	Frac float64
}

// PaperCases returns the three strategies of the paper.
func PaperCases() []CaseSpec {
	return []CaseSpec{{"Real_1", 0.05}, {"Real_2", 0.33}, {"Real_3", 0.60}}
}

// NewExperiments builds the experiment harness.  paperScale selects the
// 60,912-element mesh and processor counts up to 64 (several minutes of
// compute); otherwise a ~4k-element mesh with processor counts up to 16
// reproduces the same shapes quickly.
func NewExperiments(paperScale bool) *Experiments {
	e := &Experiments{
		Model:     msg.SP2Model(),
		Cfg:       DefaultConfig(),
		Cases:     PaperCases(),
		initParts: make(map[int][]int32),
	}
	if paperScale {
		e.Global = mesh.PaperScaleBox()
		e.LX, e.LY = 4.7, 1.8
		e.Ps = []int{1, 2, 4, 8, 16, 32, 64}
	} else {
		e.Global = mesh.Box(12, 9, 6, 4.7, 1.8, 1.2)
		e.LX, e.LY = 4.7, 1.8
		e.Ps = []int{1, 2, 4, 8, 16}
	}
	e.Dual = dual.FromMesh(e.Global)
	return e
}

// Indicator returns the shock-surface error indicator used by all
// experiments: a cylinder through the domain mimicking the rotor-blade
// shock system of the paper's acoustics test case.
func (e *Experiments) Indicator() func(mesh.Vec3) float64 {
	return adapt.ShockCylinderIndicator(
		mesh.Vec3{e.LX / 2, e.LY / 2, 0}, mesh.Vec3{0, 0, 1},
		0.39*e.LY, 0.19*e.LY)
}

// initialPartition returns (and caches) the initial P-way partition of
// the dual graph — the "Partitioning + Mapping" initialization of
// Fig. 1.  On a heterogeneous machine the per-part targets scale with
// rank speed (part j is rank j's initial subdomain), so slow processors
// start with proportionally smaller subdomains.
func (e *Experiments) initialPartition(p int) []int32 {
	if part, ok := e.initParts[p]; ok {
		obs.Default.Counter("plum_partition_cache_total", "result", "hit").Inc()
		return part
	}
	obs.Default.Counter("plum_partition_cache_total", "result", "miss").Inc()
	opt := e.Cfg.PartOpts
	if e.ModelName != "" {
		topo, err := machine.ByName(e.ModelName, p)
		if err != nil {
			panic(err) // unreachable: UseMachine validated the name
		}
		opt.TargetShares = machine.SpeedShares(topo, p)
	}
	part := partition.Partition(e.Dual, p, opt)
	e.initParts[p] = part
	return part
}

// RunStep runs one full adaption cycle on p simulated processors and
// returns the rank-0 statistics.
func (e *Experiments) RunStep(p int, frac float64, before bool, mapper Mapper) StepStats {
	initPart := e.initialPartition(p)
	ind := e.Indicator()
	mod := e.modelFor(p)
	var out StepStats
	msg.RunModel(p, mod, func(c *msg.Comm) {
		d := pmesh.New(c, e.Global, initPart, 0)
		g := e.Dual.WithWeights(e.Dual.WComp, e.Dual.WRemap)
		cfg := e.Cfg
		cfg.RemapBefore = before
		cfg.Mapper = mapper
		cfg.Topo = mod.Topo
		if mapper == MapOptBMCM {
			cfg.Metric = remap.MaxV
		}
		st := AdaptionStep(c, d, g, ind, frac, cfg)
		if c.Rank() == 0 {
			out = st
		}
	})
	return out
}

// ---------------------------------------------------------------------
// Table 1: grid sizes after one refinement for the three strategies.

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Case                        string
	Verts, Elems, Edges, BFaces int
	Growth                      float64 // mesh growth factor G
}

// Table1 runs the three strategies serially and reports the resulting
// grid sizes (plus the initial row).
func (e *Experiments) Table1() []Table1Row {
	rows := []Table1Row{{
		Case:   "Initial",
		Verts:  e.Global.NumVerts(),
		Elems:  e.Global.NumElems(),
		Edges:  e.Global.NumEdges(),
		BFaces: e.Global.NumBFaces(),
		Growth: 1,
	}}
	ind := e.Indicator()
	for _, cs := range e.Cases {
		a := adapt.FromMesh(e.Global, 0)
		a.BuildEdgeElems()
		errv := a.EdgeErrorGeometric(ind)
		a.MarkTopFraction(errv, cs.Frac)
		a.Propagate()
		pred := a.PredictRefine()
		a.Refine()
		c := a.ActiveCounts()
		rows = append(rows, Table1Row{
			Case: cs.Name, Verts: c.Verts, Elems: c.Elems,
			Edges: c.Edges, BFaces: c.BFaces, Growth: pred.GrowthFactor,
		})
	}
	return rows
}

// ---------------------------------------------------------------------
// Table 2: the three mappers compared on identical similarity matrices.

// Table2Row compares the mappers for one processor count (paper's
// Table 2, Real_2 strategy).
type Table2Row struct {
	P       int
	MaxSent int64 // max elements sent by any processor (MWBG mappers)
	Opt     MapperOutcome
	Heu     MapperOutcome
	Bmcm    MapperOutcome
}

// MapperOutcome is one mapper's data movement and reassignment time.
type MapperOutcome struct {
	TotalElems int64   // total remapping weight moved
	MaxSent    int64   // bottleneck outgoing weight
	Wall       float64 // reassignment wall-clock seconds
}

// Table2 runs the remap-before pipeline once per processor count on the
// Real_2 strategy and applies all three mappers to the same similarity
// matrix, exactly as the paper's comparison does.  One world per
// processor count, run concurrently.
func (e *Experiments) Table2(frac float64) []Table2Row {
	ind := e.Indicator()
	var ps []int
	for _, p := range e.Ps {
		if p >= 2 {
			ps = append(ps, p)
		}
	}
	e.prewarmPartitions(ps)
	rows := make([]Table2Row, len(ps))
	runWorlds(len(ps), func(i int) {
		p := ps[i]
		initPart := e.initialPartition(p)
		var row Table2Row
		msg.RunModel(p, e.modelFor(p), func(c *msg.Comm) {
			d := pmesh.New(c, e.Global, initPart, 0)
			_, _ = d.MarkGeometricFraction(ind, frac)
			d.PropagateParallel()
			wc, wr := d.GatherPredictedWeights()
			g := e.Dual.WithWeights(wc, wr)
			pr := partition.ParallelRepartition(c, g, p, d.RootOwner, e.Cfg.PartOpts)
			s := remap.BuildSimilarityDistributed(c, d.LocalRootIDs(), wr, pr.Part, 1)
			if c.Rank() != 0 {
				return
			}
			row.P = p
			evalMapper := func(kind Mapper) MapperOutcome {
				assign, wall := ApplyMapper(kind, s, nil)
				mc := remap.Cost(s, assign)
				return MapperOutcome{TotalElems: mc.CTotal, MaxSent: mc.MaxSent, Wall: wall}
			}
			row.Opt = evalMapper(MapOptMWBG)
			row.Heu = evalMapper(MapHeuristic)
			row.Bmcm = evalMapper(MapOptBMCM)
			row.MaxSent = row.Opt.MaxSent
		})
		rows[i] = row
	})
	return rows
}

// ---------------------------------------------------------------------
// Figure 2: the worked similarity-matrix example.

// Fig2Result reports the three mappers on a 4x4 example matrix (the
// scanned figure's exact entries are illegible; this reproduces the
// structure and all qualitative relationships).
type Fig2Result struct {
	S                   *remap.Similarity
	Assign              [3][]int32 // Opt MWBG, Heu MWBG, Opt BMCM
	Costs               [3]remap.MoveCost
	ObjectiveOpt        int64
	ObjectiveHeu        int64
	HeuristicBoundHolds bool
}

// Fig2 evaluates the worked example.
func Fig2() Fig2Result {
	s := remap.NewSimilarity(4, 1)
	s.S[0] = []int64{100, 90, 0, 0}
	s.S[1] = []int64{95, 0, 0, 0}
	s.S[2] = []int64{0, 85, 120, 30}
	s.S[3] = []int64{0, 0, 110, 25}
	var r Fig2Result
	r.S = s
	for i, kind := range []Mapper{MapOptMWBG, MapHeuristic, MapOptBMCM} {
		assign, _ := ApplyMapper(kind, s, nil)
		r.Assign[i] = assign
		r.Costs[i] = remap.Cost(s, assign)
	}
	r.ObjectiveOpt = s.Objective(r.Assign[0])
	r.ObjectiveHeu = s.Objective(r.Assign[1])
	r.HeuristicBoundHolds = 2*r.ObjectiveHeu >= r.ObjectiveOpt
	return r
}

// ---------------------------------------------------------------------
// Figures 4, 5, 6, 8: the scaling studies.

// ScalingRow holds one (case, P, ordering) measurement.
type ScalingRow struct {
	Case        string
	P           int
	RemapBefore bool
	AdaptTime   float64 // mark + refine (Fig 4 numerator/denominator, Fig 6 "Adaption")
	PartTime    float64 // Fig 6 "Partitioning"
	RemapTime   float64 // Fig 5 / Fig 6 "Remapping"
	Speedup     float64 // T_adapt(1) / T_adapt(P), same ordering
	Improvement float64 // Fig 8: Wold_max / Wnew_max after refinement
	Growth      float64 // realized growth factor
}

// Scaling runs the full sweep: every case, every processor count, both
// remap orderings.  This single sweep supplies Figs. 4, 5, 6 and 8.
// Every (case, ordering, P) combination is an independent world, so the
// sweep fans out over runWorlds; the speedup column needs the P=1
// baseline of each (case, ordering) series, so it is derived after the
// barrier, preserving the serial sweep's numbers exactly.
func (e *Experiments) Scaling() []ScalingRow {
	e.prewarmPartitions(e.Ps)
	type job struct {
		cs     CaseSpec
		before bool
		p      int
	}
	var jobs []job
	for _, cs := range e.Cases {
		for _, before := range []bool{false, true} {
			for _, p := range e.Ps {
				jobs = append(jobs, job{cs, before, p})
			}
		}
	}
	rows := make([]ScalingRow, len(jobs))
	runWorlds(len(jobs), func(i int) {
		j := jobs[i]
		st := e.RunStep(j.p, j.cs.Frac, j.before, MapHeuristic)
		growth := 1.0
		if n := e.Global.NumElems(); n > 0 {
			growth = float64(st.Counts.Elems) / float64(n)
		}
		rows[i] = ScalingRow{
			Case: j.cs.Name, P: j.p, RemapBefore: j.before,
			AdaptTime: st.MarkTime + st.RefineTime, PartTime: st.PartitionTime,
			RemapTime: st.RemapTime, Speedup: 1,
			Improvement: st.SolverImprovement(), Growth: growth,
		}
	})
	// Speedup: T_adapt(1) / T_adapt(P) within each (case, ordering).
	var t1 float64
	for i, j := range jobs {
		if i%len(e.Ps) == 0 {
			t1 = 0 // new (case, ordering) series
		}
		if j.p == 1 {
			t1 = rows[i].AdaptTime
		}
		if rows[i].AdaptTime > 0 && t1 > 0 {
			rows[i].Speedup = t1 / rows[i].AdaptTime
		}
	}
	return rows
}

// Fig7Row is one curve point of the analytic load-balancing bound.
type Fig7Row struct {
	P           int
	G           float64
	Improvement float64
}

// Fig7 evaluates the analytic model for the paper's three growth
// factors at the harness's processor counts.
func (e *Experiments) Fig7() []Fig7Row {
	var rows []Fig7Row
	for _, g := range []float64{1.353, 3.310, 5.279} {
		for _, p := range e.Ps {
			rows = append(rows, Fig7Row{P: p, G: g, Improvement: MaxImprovement(p, g)})
		}
	}
	return rows
}
