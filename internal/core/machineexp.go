package core

import (
	"plum/internal/machine"
	"plum/internal/msg"
	"plum/internal/pmesh"
	"plum/internal/remap"
)

// The machine experiment: the paper's Fig. 7/8 story — how much does
// intelligent balancing buy — re-asked per machine topology.  On a flat
// SP2 every mapper sees the same network; on an SMP cluster or a fat
// tree the hop-oblivious heuristic drags data across expensive links
// that the topology-aware mapper keeps local.

// MachineRow is one (topology, P, mapper) measurement of the sweep.
type MachineRow struct {
	Model       string
	P           int
	Mapper      Mapper
	HopMaxV     int64   // bottleneck hop-weighted volume (MapTopo's objective)
	HopTotalV   int64   // network-wide hop-weighted volume
	Moved       int64   // plain moved weight (hop-oblivious CTotal)
	RemapTime   float64 // simulated migration seconds under the topology
	Improvement float64 // Fig. 8-style Wold_max / Wnew_max
}

// MachineMappers returns the mapper pair the sweep compares: the
// paper's default greedy mapper against the topology-aware one.
func MachineMappers() []Mapper { return []Mapper{MapHeuristic, MapTopo} }

// machineSweepF is the partition granularity of the sweep.  At F=1 the
// repartitioner aligns new partitions with current owners so tightly
// that every mapper finds the same (hop-optimal) assignment; two
// partitions per processor restores the assignment freedom where
// topology awareness pays (cf. the paper's Section 4.3 remark that
// F > 1 partitions give the mapper room to trade movement for balance).
const machineSweepF = 2

// MachineSweep runs one Real_2-style adaption cycle (the full
// AdaptionStep pipeline) per (topology, P, mapper) and reports
// hop-weighted movement, simulated remap time, and the load-balancing
// improvement.  Every topology in models is instantiated fresh per
// world (contention state is world-private); processor counts below 4
// are skipped (a one-node "cluster" has no topology to see).  The
// worlds are independent and run concurrently (runWorlds); row order —
// and every simulated number — is identical to the serial sweep.
func (e *Experiments) MachineSweep(frac float64, models []string, mappers []Mapper) []MachineRow {
	ind := e.Indicator()
	type job struct {
		name   string
		p      int
		mapper Mapper
	}
	var jobs []job
	var ps []int
	for _, p := range e.Ps {
		if p >= 4 {
			ps = append(ps, p)
		}
	}
	e.prewarmPartitions(ps)
	for _, name := range models {
		for _, p := range ps {
			for _, mapper := range mappers {
				jobs = append(jobs, job{name, p, mapper})
			}
		}
	}
	rows := make([]MachineRow, len(jobs))
	runWorlds(len(jobs), func(i int) {
		j := jobs[i]
		topo, err := machine.ByName(j.name, j.p)
		if err != nil {
			panic(err)
		}
		mod := e.Model.WithTopo(topo)
		initPart := e.initialPartition(j.p)
		row := MachineRow{Model: j.name, P: j.p, Mapper: j.mapper}
		msg.RunModel(j.p, mod, func(c *msg.Comm) {
			d := pmesh.New(c, e.Global, initPart, 0)
			g := e.Dual.WithWeights(e.Dual.WComp, e.Dual.WRemap)
			cfg := e.Cfg
			cfg.F = machineSweepF
			cfg.Mapper = j.mapper
			cfg.Topo = topo
			cfg.ForceAccept = true
			if j.mapper == MapTopo {
				cfg.Metric = remap.MaxV
			}
			st := AdaptionStep(c, d, g, ind, frac, cfg)
			if c.Rank() == 0 {
				row.HopMaxV, row.HopTotalV = st.Hop.MaxHV, st.Hop.TotalHV
				row.Moved = st.Moved.CTotal
				row.RemapTime = st.RemapTime
				row.Improvement = st.SolverImprovement()
			}
		})
		rows[i] = row
	})
	return rows
}
