# Developer entry points.  The repo needs only the Go toolchain; these
# targets wrap the invocations CI runs, plus the two baseline-refresh
# paths (run after a deliberate, reviewed performance or schema change —
# the diff of the regenerated baseline IS the review artifact).

GO ?= go

.PHONY: build test bench bench-baseline ledger-baseline gate scenarios scenario-baseline fmt vet

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

bench:
	$(GO) run ./cmd/plumbench -exp bench -benchout BENCH_sim.json

# bench-baseline refreshes the committed host-benchmark baseline from a
# fresh local run.  Host numbers are machine-dependent: refresh on the
# machine class CI uses, or expect the loose 2x threshold to absorb the
# difference.
bench-baseline:
	$(GO) run ./cmd/plumbench -exp bench -benchout ci/BENCH_baseline.json
	@echo "refreshed ci/BENCH_baseline.json — commit it with the change that moved the numbers"

# ledger-baseline refreshes the committed simulated-run baseline the CI
# regression gate diffs against.  Simulated epochs are machine-
# independent, so a refresh is exact everywhere; required after any
# deliberate simulated-time change or a ledger schema bump (the config
# digest embeds the schema version).
ledger-baseline:
	$(GO) run ./cmd/plumbench -exp feedback -obs ci/LEDGER_baseline.jsonl
	@echo "refreshed ci/LEDGER_baseline.jsonl — commit it with the change that moved the numbers"

# gate runs the same differential regression gate as CI, locally.
gate:
	$(GO) build -o /tmp/plum-gate-bench ./cmd/plumbench
	$(GO) build -o /tmp/plum-gate-diff ./cmd/plumdiff
	/tmp/plum-gate-bench -exp feedback -obs /tmp/plum-gate-run.jsonl > /dev/null
	/tmp/plum-gate-diff -gate -fail-on-flip ci/LEDGER_baseline.jsonl /tmp/plum-gate-run.jsonl

# scenarios runs the committed workload corpus (ci/scenarios/*.json)
# under both pricing modes and prints the league table.
scenarios:
	$(GO) run ./cmd/plumbench -exp scenarios

# scenario-baseline regenerates every golden scenario ledger the CI
# scenario-gate byte-verifies against.  One plumbench invocation per
# scenario — the goldens must match the per-scenario runs CI performs
# (the ledger's config digest covers the selected scenario names).
# Scenario ledgers omit the host-metrics record, so a refresh is exact
# on any machine; commit the regenerated goldens with the change that
# moved them — their diff IS the review artifact.
scenario-baseline:
	$(GO) build -o /tmp/plum-scenario-bench ./cmd/plumbench
	@for f in ci/scenarios/*.json; do \
		name=$$(basename $$f .json); \
		echo "regenerating ci/scenarios/$$name.golden.jsonl"; \
		/tmp/plum-scenario-bench -exp scenarios -scenario $$name \
			-obs ci/scenarios/$$name.golden.jsonl > /dev/null || exit 1; \
	done
	@echo "refreshed ci/scenarios/*.golden.jsonl — commit them with the change that moved the numbers"

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
