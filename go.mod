module plum

go 1.22
