// Benchmarks regenerating every table and figure of the paper (one
// bench target per artifact; see DESIGN.md Section 4 for the index) plus
// ablations of the design choices the paper calls out.  Benchmarks run
// at reduced scale so `go test -bench=.` completes quickly; the paper-
// scale numbers in EXPERIMENTS.md come from `cmd/plumbench -paper`.
package plum_test

import (
	"testing"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/event"
	"plum/internal/linalg"
	"plum/internal/machine"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/remap"
	"plum/internal/solver"
)

// benchExperiments builds the reduced-scale harness once.
func benchExperiments(b *testing.B) *core.Experiments {
	b.Helper()
	return core.NewExperiments(false)
}

// BenchmarkTable1Refinement regenerates Table 1: one serial refinement
// per strategy on the benchmark mesh.
func BenchmarkTable1Refinement(b *testing.B) {
	e := benchExperiments(b)
	for _, cs := range core.PaperCases() {
		b.Run(cs.Name, func(b *testing.B) {
			ind := e.Indicator()
			for i := 0; i < b.N; i++ {
				a := adapt.FromMesh(e.Global, 0)
				a.BuildEdgeElems()
				errv := a.EdgeErrorGeometric(ind)
				a.MarkTopFraction(errv, cs.Frac)
				a.Propagate()
				st := a.Refine()
				b.ReportMetric(float64(st.ElemsCreated), "elems-created")
			}
		})
	}
}

// BenchmarkTable2Mappers regenerates Table 2: the three mappers on the
// similarity matrices produced by the Real_2 pipeline.
func BenchmarkTable2Mappers(b *testing.B) {
	e := benchExperiments(b)
	e.Ps = []int{4, 8, 16}
	rows := e.Table2(0.33) // build matrices once via the real pipeline
	_ = rows
	for _, p := range e.Ps {
		s := randomSimilarity(p)
		for _, kind := range []core.Mapper{core.MapHeuristic, core.MapOptMWBG, core.MapOptBMCM} {
			b.Run(kind.String()+"/P="+itoa(p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					assign, _ := core.ApplyMapper(kind, s, nil)
					_ = assign
				}
			})
		}
	}
}

// BenchmarkFig4Speedup regenerates the Fig. 4 measurement: one adaption
// cycle per (ordering, P).
func BenchmarkFig4Speedup(b *testing.B) {
	e := benchExperiments(b)
	for _, before := range []bool{true, false} {
		name := "after"
		if before {
			name = "before"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := e.RunStep(8, 0.33, before, core.MapHeuristic)
				b.ReportMetric(st.MarkTime+st.RefineTime, "sim-adapt-s")
			}
		})
	}
}

// BenchmarkFig5RemapTime regenerates the Fig. 5 measurement.
func BenchmarkFig5RemapTime(b *testing.B) {
	e := benchExperiments(b)
	for _, before := range []bool{true, false} {
		name := "after"
		if before {
			name = "before"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := e.RunStep(8, 0.60, before, core.MapHeuristic)
				b.ReportMetric(st.RemapTime, "sim-remap-s")
				b.ReportMetric(float64(st.Mig.ElemsSent), "elems-moved")
			}
		})
	}
}

// BenchmarkFig6Anatomy regenerates the Fig. 6 measurement: the phase
// anatomy across processor counts.
func BenchmarkFig6Anatomy(b *testing.B) {
	e := benchExperiments(b)
	for _, p := range []int{2, 8, 16} {
		b.Run("P="+itoa(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := e.RunStep(p, 0.33, true, core.MapHeuristic)
				b.ReportMetric(st.MarkTime+st.RefineTime, "sim-adapt-s")
				b.ReportMetric(st.PartitionTime, "sim-part-s")
				b.ReportMetric(st.RemapTime, "sim-remap-s")
			}
		})
	}
}

// BenchmarkFig8Impact regenerates the Fig. 8 measurement: solver
// improvement from load balancing.
func BenchmarkFig8Impact(b *testing.B) {
	e := benchExperiments(b)
	for _, cs := range core.PaperCases() {
		b.Run(cs.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := e.RunStep(8, cs.Frac, true, core.MapHeuristic)
				b.ReportMetric(st.SolverImprovement(), "improvement-x")
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md Section 5).

// BenchmarkMapperScaling compares mapper costs as P grows (Table 2's
// time columns, isolated).
func BenchmarkMapperScaling(b *testing.B) {
	for _, p := range []int{16, 64, 128} {
		s := randomSimilarity(p)
		for _, kind := range []core.Mapper{core.MapHeuristic, core.MapOptMWBG, core.MapOptBMCM} {
			b.Run(kind.String()+"/P="+itoa(p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					assign, _ := core.ApplyMapper(kind, s, nil)
					_ = assign
				}
			})
		}
	}
}

// BenchmarkRepartitionSeeding measures the remapping-cost benefit of
// seeding the repartitioner with the previous partition (the parallel
// MeTiS behaviour the paper highlights in Section 4.2).
func BenchmarkRepartitionSeeding(b *testing.B) {
	e := benchExperiments(b)
	g := e.Dual
	prev := partition.Partition(g, 8, partition.Default())
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for v := range wc {
		wc[v] = 1
		if prev[v] == 0 {
			wc[v] = 4
		}
		wr[v] = 1
	}
	gw := g.WithWeights(wc, wr)
	for _, seeded := range []bool{true, false} {
		name := "scratch"
		if seeded {
			name = "seeded"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var part []int32
				if seeded {
					part = partition.Repartition(gw, 8, prev, partition.Default())
				} else {
					part = partition.Partition(gw, 8, partition.Default())
				}
				moved := 0
				for v := range part {
					if part[v] != prev[v] {
						moved++
					}
				}
				b.ReportMetric(float64(moved), "verts-moved")
				b.ReportMetric(float64(partition.EdgeCut(gw, part)), "edge-cut")
			}
		})
	}
}

// BenchmarkFGranularity sweeps F (partitions per processor, paper
// Section 4.3): finer granularity reduces movement at higher mapping
// cost.
func BenchmarkFGranularity(b *testing.B) {
	e := benchExperiments(b)
	g := e.Dual
	p := 8
	prev := partition.Partition(g, p, partition.Default())
	wc := make([]int64, g.NumVerts())
	wr := make([]int64, g.NumVerts())
	for v := range wc {
		wc[v] = 1 + int64(v%5)
		wr[v] = wc[v]
	}
	gw := g.WithWeights(wc, wr)
	for _, f := range []int{1, 2, 4} {
		b.Run("F="+itoa(f), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				newPart := partition.Repartition(gw, p*f, prev, partition.Default())
				// Owner per vertex under F partitions per processor.
				owner := make([]int32, g.NumVerts())
				for v := range owner {
					owner[v] = prev[v]
				}
				s := remap.BuildSimilarity(gw.WRemap, owner, newPart, p, f)
				assign := remap.HeuristicMWBG(s)
				mc := remap.Cost(s, assign)
				b.ReportMetric(float64(mc.CTotal), "weight-moved")
			}
		})
	}
}

// BenchmarkAgglomeration measures the partitioning-time benefit of
// superelement agglomeration (paper Section 4.1's mitigation for very
// large initial meshes).
func BenchmarkAgglomeration(b *testing.B) {
	e := benchExperiments(b)
	for _, size := range []int{1, 4, 16} {
		b.Run("size="+itoa(size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cg, cmap := dual.Agglomerate(e.Dual, size)
				cpart := partition.Partition(cg, 8, partition.Default())
				part := dual.ProjectPartition(cpart, cmap)
				b.ReportMetric(float64(partition.EdgeCut(e.Dual, part)), "edge-cut")
				b.ReportMetric(partition.Imbalance(e.Dual, part, 8), "imbalance")
			}
		})
	}
}

// BenchmarkSolverStep measures the edge-kernel throughput serially and
// distributed.
func BenchmarkSolverStep(b *testing.B) {
	global := mesh.Box(12, 9, 6, 4.7, 1.8, 1.2)
	b.Run("serial", func(b *testing.B) {
		a := adapt.FromMesh(global, solver.NComp)
		solver.InitField(a, solver.GaussianPulse(mesh.Vec3{2.35, 0.9, 0.6}, 0.5))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			solver.Step(a, 0.001)
		}
	})
	b.Run("parallel-4", func(b *testing.B) {
		g := dual.FromMesh(global)
		part := partition.Partition(g, 4, partition.Default())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			msg.Run(4, func(c *msg.Comm) {
				d := pmesh.New(c, global, part, solver.NComp)
				ps := solver.NewParallel(d)
				ps.InitParallel(solver.GaussianPulse(mesh.Vec3{2.35, 0.9, 0.6}, 0.5))
				ps.Step(0.001)
			})
		}
	})
}

// BenchmarkSpMV measures the CSR sparse matrix-vector kernel — the hot
// path of the implicit workload (one call per PCG iteration per rank).
func BenchmarkSpMV(b *testing.B) {
	global := mesh.Box(12, 9, 6, 4.7, 1.8, 1.2)
	a := adapt.FromMesh(global, 0)
	a.BuildEdgeElems()
	ind := adapt.ShockCylinderIndicator(mesh.Vec3{2.35, 0.9, 0}, mesh.Vec3{0, 0, 1}, 0.7, 0.35)
	errv := a.EdgeErrorGeometric(ind)
	a.MarkTopFraction(errv, 0.33)
	a.Propagate()
	a.Refine()
	A := linalg.Assemble(a, 1, 0.5)
	x := make([]float64, A.NRows)
	y := make([]float64, A.NRows)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	b.SetBytes(int64(A.NNZ()) * 8)
	b.ReportMetric(float64(A.NNZ()), "nnz")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		A.MulVec(y, x)
	}
}

// BenchmarkPCGIteration measures the per-iteration cost of the
// preconditioned solver (10 iterations per op, uncapped tolerance), the
// baseline future perf work on the implicit hot path compares against.
func BenchmarkPCGIteration(b *testing.B) {
	global := mesh.Box(12, 9, 6, 4.7, 1.8, 1.2)
	a := adapt.FromMesh(global, 0)
	A := linalg.Assemble(a, 1, 0.5)
	sys := linalg.NewSerial(A)
	rhs := make([]float64, A.NRows)
	for i := range rhs {
		rhs[i] = 1 + float64(i%7)*0.5
	}
	for _, kind := range []linalg.PrecondKind{linalg.PrecondNone, linalg.PrecondJacobi, linalg.PrecondSPAI} {
		pre := sys.NewPrecond(kind)
		b.Run(kind.String(), func(b *testing.B) {
			const itersPerOp = 10
			for i := 0; i < b.N; i++ {
				x := make([]float64, A.NRows)
				res := linalg.PCG(sys, pre, rhs, x, linalg.Options{Tol: 1e-300, MaxIter: itersPerOp})
				if res.Iterations != itersPerOp {
					b.Fatalf("expected %d iterations, got %d", itersPerOp, res.Iterations)
				}
			}
			b.ReportMetric(itersPerOp, "pcg-iters/op")
		})
	}
}

// BenchmarkSPAISetup measures preconditioner construction (the
// embarrassingly parallel per-row least-squares solves).
func BenchmarkSPAISetup(b *testing.B) {
	global := mesh.Box(12, 9, 6, 4.7, 1.8, 1.2)
	a := adapt.FromMesh(global, 0)
	A := linalg.Assemble(a, 1, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.NewSerialSPAI(A)
	}
}

// BenchmarkImplicitDistributed measures a distributed implicit step on 4
// ranks: assembly reuse, halo exchanges, exact reductions and all.
func BenchmarkImplicitDistributed(b *testing.B) {
	global := mesh.Box(8, 6, 4, 4.7, 1.8, 1.2)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 4, partition.Default())
	for i := 0; i < b.N; i++ {
		msg.Run(4, func(c *msg.Comm) {
			d := pmesh.New(c, global, part, solver.NComp)
			solver.InitField(d.M, solver.GaussianPulse(mesh.Vec3{2.35, 0.9, 0.6}, 0.5))
			im := solver.NewImplicit(d, solver.DefaultImplicitOptions())
			r := im.Step()
			if c.Rank() == 0 {
				b.ReportMetric(float64(r.Iterations), "pcg-iters")
			}
		})
	}
}

// BenchmarkMigration measures raw pack/ship/unpack throughput.
func BenchmarkMigration(b *testing.B) {
	global := mesh.Box(8, 6, 4, 1, 1, 1)
	g := dual.FromMesh(global)
	part := partition.Partition(g, 4, partition.Default())
	for i := 0; i < b.N; i++ {
		msg.Run(4, func(c *msg.Comm) {
			d := pmesh.New(c, global, part, 0)
			// Rotate ownership by one rank: everything moves.
			newOwner := make([]int32, global.NumElems())
			for r := range newOwner {
				newOwner[r] = (part[r] + 1) % 4
			}
			st := d.Migrate(newOwner)
			if c.Rank() == 0 {
				b.ReportMetric(float64(st.ElemsRecv), "elems-recv")
			}
		})
	}
}

// BenchmarkPartitionerSerial measures the multilevel partitioner on the
// benchmark dual graph.
func BenchmarkPartitionerSerial(b *testing.B) {
	e := benchExperiments(b)
	for _, k := range []int{8, 64} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				part := partition.Partition(e.Dual, k, partition.Default())
				b.ReportMetric(float64(partition.EdgeCut(e.Dual, part)), "edge-cut")
			}
		})
	}
}

func randomSimilarity(p int) *remap.Similarity {
	s := remap.NewSimilarity(p, 1)
	x := uint64(12345)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			if x%10 < 4 {
				s.S[i][j] = int64(x % 1000)
			}
		}
	}
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------
// Machine-model benchmarks: the per-pair cost lookup sits on the send
// and receive path of every simulated message, and the up-link
// contention queue is the only mutex the fat tree takes per off-group
// transfer.  Future model changes must keep both flat.

// BenchmarkMachinePairLookup measures Model.Pair across the four
// topologies at P=64 (the paper's largest machine).
func BenchmarkMachinePairLookup(b *testing.B) {
	const p = 64
	for _, name := range machine.Names() {
		m, err := machine.ByName(name, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				lp := m.Pair(i%p, (i*7+3)%p)
				sink += lp.Setup
			}
			benchSinkFloat = sink
		})
	}
}

// BenchmarkMachineHops measures the hop-distance metric MapTopo
// evaluates O(P^2) times per similarity matrix.
func BenchmarkMachineHops(b *testing.B) {
	const p = 64
	for _, name := range machine.Names() {
		m, err := machine.ByName(name, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += m.Hops(i%p, (i*7+3)%p)
			}
			benchSinkInt = sink
		})
	}
}

// BenchmarkMachineContention measures the fat-tree up-link reservation
// hot path: serial reservations on one group's up-link (the worst case
// a bursting rank sees) and off-group transfers spread over all groups.
func BenchmarkMachineContention(b *testing.B) {
	const p = 64
	ft := machine.NewFatTree(p, 4, machine.SP2Link(), 10e-6, machine.SP2Link().PerByte)
	b.Run("same-uplink", func(b *testing.B) {
		ft.Reset()
		var sink float64
		for i := 0; i < b.N; i++ {
			sink = ft.Acquire(0, 32, 1024, sink)
		}
		benchSinkFloat = sink
	})
	b.Run("spread-uplinks", func(b *testing.B) {
		ft.Reset()
		var sink float64
		for i := 0; i < b.N; i++ {
			src := (i * 4) % p
			sink = ft.Acquire(src, (src+32)%p, 1024, sink)
		}
		benchSinkFloat = sink
	})
}

var (
	benchSinkFloat float64
	benchSinkInt   int
)

// ---------------------------------------------------------------------
// Event-engine benchmarks: the calendar queue is touched on every yield,
// block, and wake of every simulated rank, and critical-path extraction
// runs over full traces after every traced experiment.  Future engine
// changes must keep both flat.

// BenchmarkEventQueue measures calendar push/pop at engine-realistic
// populations (one entry per live rank).
func BenchmarkEventQueue(b *testing.B) {
	for _, p := range []int{8, 64, 1024} {
		b.Run("P="+itoa(p), func(b *testing.B) {
			var c event.Calendar
			for i := 0; i < p; i++ {
				c.Push(event.Entry{Time: float64((i * 37) % 101), ID: i, Seq: int64(i)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := c.Pop()
				e.Time += float64((i % 13)) * 0.25
				e.Seq = int64(p + i)
				c.Push(e)
			}
			benchSinkInt = c.Len()
		})
	}
}

// syntheticTrace builds a ring-shaped trace: each rank computes, sends
// to its right neighbour, and waits on its left — every receive waits on
// the wire, so the critical path zigzags across ranks (the worst case
// for the walk).
func syntheticTrace(p, rounds int) *event.Trace {
	tr := &event.Trace{P: p}
	clock := make([]float64, p)
	var msgid int64
	for round := 0; round < rounds; round++ {
		arrivals := make([]float64, p)
		ids := make([]int64, p)
		for r := 0; r < p; r++ {
			t0 := clock[r]
			clock[r] += 1 + float64(r%3)
			tr.Add(event.Record{Rank: r, Kind: event.KindCompute, T0: t0, T1: clock[r], Peer: -1})
			msgid++
			ids[r] = msgid
			tr.Add(event.Record{Rank: r, Kind: event.KindSend, T0: clock[r], T1: clock[r] + 0.5,
				Peer: (r + 1) % p, Bytes: 64, MsgID: msgid})
			clock[r] += 0.5
			arrivals[r] = clock[r] + 2
		}
		for r := 0; r < p; r++ {
			left := (r + p - 1) % p
			t0 := clock[r]
			end := arrivals[left]
			if end < t0 {
				end = t0
			}
			end += 0.5
			tr.Add(event.Record{Rank: r, Kind: event.KindRecv, T0: t0, T1: end,
				Peer: left, Bytes: 64, MsgID: ids[left], Arrival: arrivals[left]})
			clock[r] = end
		}
	}
	return tr
}

// BenchmarkCriticalPath measures extraction over traces of growing size.
func BenchmarkCriticalPath(b *testing.B) {
	for _, rounds := range []int{10, 100} {
		tr := syntheticTrace(8, rounds)
		b.Run("records="+itoa(len(tr.Records)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := event.CriticalPath(tr)
				benchSinkFloat = p.Makespan
			}
		})
	}
}

// BenchmarkTracedRunOverhead measures what tracing costs on a real
// simulated workload (an 8-rank allreduce+compute loop), against the
// untraced engine.
func BenchmarkTracedRunOverhead(b *testing.B) {
	body := func(c *msg.Comm) {
		for i := 0; i < 50; i++ {
			c.Compute(100)
			c.AllreduceFloat64(float64(c.Rank()), msg.SumFloat64)
		}
	}
	b.Run("untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			msg.RunModel(8, msg.SP2Model(), body)
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, tr := msg.RunTraced(8, msg.SP2Model(), body)
			benchSinkInt = len(tr.Records)
		}
	})
}

// BenchmarkOverlapPCG measures the simulated-time benefit of the halo
// overlap end to end: one two-mode implicit PCG comparison on the SMP
// cluster per iteration, reporting both critical paths as metrics.
func BenchmarkOverlapPCG(b *testing.B) {
	e := core.NewExperiments(false)
	for i := 0; i < b.N; i++ {
		rows := e.OverlapComparison(8, []string{"smp"})
		b.ReportMetric(rows[0].CPBlocking, "sim-cp-blocking-s")
		b.ReportMetric(rows[0].CPOverlap, "sim-cp-overlapped-s")
	}
}

// BenchmarkSendRecvPingPong measures the runtime's per-message host
// cost on the steady-state exchange loop: pooled payload, engine
// handoff, mailbox take, release.  This is the unit the halo exchange
// and the collectives are built from; it must stay allocation-free.
func BenchmarkSendRecvPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		msg.RunModel(2, msg.SP2Model(), func(c *msg.Comm) {
			payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
			peer := 1 - c.Rank()
			for k := 0; k < 100; k++ {
				if c.Rank() == 0 {
					c.Send(peer, 7, payload)
					c.Release(c.Recv(peer, 7))
				} else {
					c.Release(c.Recv(peer, 7))
					c.Send(peer, 7, payload)
				}
			}
		})
	}
}

// BenchmarkExactDot measures the exact (superaccumulator) reduction —
// the per-element cost every PCG dot product pays on every rank.
func BenchmarkExactDot(b *testing.B) {
	const n = 1 << 15
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17)*0.25 - 1
		y[i] = float64(i%13)*0.5 - 2
	}
	b.SetBytes(n * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkFloat = linalg.ExactDot(x, y)
	}
}

// BenchmarkExactAccTransport measures the reduction's transport
// boundary: serialize a rank's accumulator, reconstruct, merge — what
// the root does P-1 times per distributed dot.
func BenchmarkExactAccTransport(b *testing.B) {
	a := linalg.NewAcc()
	a.AddProducts([]float64{1e-30, 7, -2.5e20, 3.25}, []float64{3, 1, 1, 2})
	wire := a.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := linalg.NewAcc()
		total.Merge(linalg.AccFromBytes(wire))
		benchSinkFloat = total.Float64()
	}
}

// BenchmarkMachineSweepWorlds measures the parallel-world harness on
// the machine sweep (2 topologies x 2 mappers x one P): wall-clock
// scales with host cores while every row stays bitwise fixed.
func BenchmarkMachineSweepWorlds(b *testing.B) {
	e := core.NewExperiments(false)
	e.Ps = []int{8}
	for i := 0; i < b.N; i++ {
		rows := e.MachineSweep(0.33, []string{"smp", "fattree"}, core.MachineMappers())
		benchSinkInt = len(rows)
	}
}
