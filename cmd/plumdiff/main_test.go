package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"plum/internal/obs"
)

func writeLedger(t *testing.T, dir, name, digest string, solve float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	l, err := obs.Create(path, obs.Manifest{Tool: "plumdiff_test", ConfigDigest: digest})
	if err != nil {
		t.Fatal(err)
	}
	l.Add(obs.EpochRecord{
		Kind: "epoch", Exp: "implicit", Run: "analytic", P: 4, Cycle: 0,
		Pricing: "analytic", Accepted: true, SolveSeconds: solve,
	})
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSelfDiffExitZero: plumdiff a.jsonl a.jsonl reports zero deltas
// and exits 0, gated or not — the ISSUE's acceptance check.
func TestSelfDiffExitZero(t *testing.T) {
	dir := t.TempDir()
	a := writeLedger(t, dir, "a.jsonl", "cfg", 1.0)
	var out, errb bytes.Buffer
	if code := run([]string{a, a}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no differences") {
		t.Errorf("self-diff output lacks zero banner:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-gate", a, a}, &out, &errb); code != 0 {
		t.Fatalf("gated self-diff exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "gate: PASS") {
		t.Errorf("gated self-diff lacks PASS:\n%s", out.String())
	}
}

// TestInjectedRegressionGateFails: a slower current run must exit 1
// under -gate and name the regression — the CI contract.
func TestInjectedRegressionGateFails(t *testing.T) {
	dir := t.TempDir()
	base := writeLedger(t, dir, "base.jsonl", "cfg", 1.0)
	cur := writeLedger(t, dir, "cur.jsonl", "cfg", 1.25)
	var out, errb bytes.Buffer
	if code := run([]string{"-gate", base, cur}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "gate: FAIL") ||
		!strings.Contains(out.String(), "sim-time") {
		t.Errorf("gate output does not name the regression:\n%s", out.String())
	}
	// Ungated, the same pair exits 0 (a diff is not a judgment).
	out.Reset()
	if code := run([]string{base, cur}, &out, &errb); code != 0 {
		t.Fatalf("ungated diff exit %d", code)
	}
}

// TestIncomparableGate: differing config digests fail the gate by
// default (stale baseline) and pass with -allow-incomparable.
func TestIncomparableGate(t *testing.T) {
	dir := t.TempDir()
	base := writeLedger(t, dir, "base.jsonl", "cfg-old", 1.0)
	cur := writeLedger(t, dir, "cur.jsonl", "cfg-new", 1.0)
	var out, errb bytes.Buffer
	if code := run([]string{"-gate", base, cur}, &out, &errb); code != 1 {
		t.Fatalf("incomparable gate exit %d, want 1", code)
	}
	out.Reset()
	if code := run([]string{"-gate", "-allow-incomparable", base, cur}, &out, &errb); code != 0 {
		t.Fatalf("-allow-incomparable exit %d, stdout: %s", code, out.String())
	}
}

// TestOutputFormats: -json - emits a parseable report; -md out.md
// writes the markdown file; usage errors exit 2.
func TestOutputFormats(t *testing.T) {
	dir := t.TempDir()
	a := writeLedger(t, dir, "a.jsonl", "cfg", 1.0)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-", a, a}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json - output not JSON: %v", err)
	}
	if rep["comparable"] != true {
		t.Errorf("json report comparable = %v", rep["comparable"])
	}

	if code := run([]string{a}, &out, &errb); code != 2 {
		t.Errorf("one-arg usage exit %d, want 2", code)
	}
	if code := run([]string{"-spans-base", "x.jsonl", a, a}, &out, &errb); code != 2 {
		t.Errorf("lone -spans-base exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(dir, "missing.jsonl"), a}, &out, &errb); code != 1 {
		t.Errorf("missing file exit %d, want 1", code)
	}
}
