// Command plumdiff performs an exact differential analysis of two
// simulated runs: it aligns two run ledgers (plumbench -obs) epoch by
// epoch, attributes the end-to-end simulated-time delta down the stack
// — flipped accept/reject verdicts, the critical-path component
// (compute / overhead / wait / path gaps) that carried the change, the
// rank×phase sender-lag blame cell that grew, the partition-quality
// term (edge cut, imbalance, TotalV) that drifted — and emits a ranked
// "what changed and why" report as text, markdown, or JSON.
//
// Because simulated outputs are pure functions of the configuration,
// the diff is exact: `plumdiff run.jsonl run.jsonl` reports zero deltas
// (bitwise), and the attributed deltas sum exactly to the end-to-end
// delta at every level.
//
// Optional inputs deepen the attribution: -spans-base/-spans-cur diff
// the full span/blame streams (plumbench -spans) for complete lag-cell
// and edge tables; -bench-base/-bench-cur attach the host benchmark
// comparison (the benchcmp tables).
//
// -gate turns plumdiff into a CI regression gate: exit 1 when the
// current run's simulated time regresses past -sim-threshold (tight —
// simulated seconds are machine-independent), a verdict flips
// (-fail-on-flip), or a host benchmark regresses past -host-threshold
// (loose — runners are noisy).
//
// Usage:
//
//	plumdiff [flags] base.jsonl current.jsonl
//	plumdiff -gate -bench-base ci/BENCH_baseline.json -bench-cur BENCH_sim.json base.jsonl current.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"plum/internal/obs/diff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: exit 0 on success (gate passing or
// no gate), 1 on gate violations or I/O errors, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("plumdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchBase = fs.String("bench-base", "", "baseline BENCH_sim.json to fold into the report")
		benchCur  = fs.String("bench-cur", "", "current BENCH_sim.json to fold into the report")
		spansBase = fs.String("spans-base", "", "baseline span/blame stream (plumbench -spans)")
		spansCur  = fs.String("spans-cur", "", "current span/blame stream")
		mdPath    = fs.String("md", "", "also write the report as markdown to this file"+
			" (\"-\" for stdout instead of text)")
		jsonPath = fs.String("json", "", "also write the report as JSON to this file"+
			" (\"-\" for stdout instead of text)")
		gate = fs.Bool("gate", false, "evaluate regression thresholds and exit 1 on violations")
		simT = fs.Float64("sim-threshold", 1.001, "gate: fail when simulated time exceeds"+
			" baseline by this factor (exact plane — keep tight)")
		simAbs = fs.Float64("sim-abs", 1e-9, "gate: ignore simulated regressions below this"+
			" many absolute seconds")
		hostT = fs.Float64("host-threshold", 2.0, "gate: fail when a benchmark's ns/op exceeds"+
			" baseline by this factor (host plane — keep loose)")
		failFlip = fs.Bool("fail-on-flip", false, "gate: fail on any verdict flip")
		noComp   = fs.Bool("allow-incomparable", false, "gate: do not fail when config digests"+
			" differ (default: an incomparable pair means a stale baseline)")
		top     = fs.Int("top", 8, "bound ranked findings and blame tables")
		metrics = fs.Bool("metrics", false, "include the host-plane counter diff (informational)")
		lenient = fs.Bool("lenient", false, "tolerate truncated ledgers (live or crashed runs)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: plumdiff [flags] base.jsonl current.jsonl")
		fs.PrintDefaults()
		return 2
	}

	opt := diff.Options{TopK: *top, Metrics: *metrics}
	rep, err := diff.LedgerFiles(fs.Arg(0), fs.Arg(1), *lenient, opt)
	if err != nil {
		fmt.Fprintf(stderr, "plumdiff: %v\n", err)
		return 1
	}
	if *spansBase != "" || *spansCur != "" {
		if *spansBase == "" || *spansCur == "" {
			fmt.Fprintln(stderr, "plumdiff: -spans-base and -spans-cur must be given together")
			return 2
		}
		deltas, err := diff.SpanFiles(*spansBase, *spansCur, opt)
		if err != nil {
			fmt.Fprintf(stderr, "plumdiff: %v\n", err)
			return 1
		}
		rep.Spans = deltas
		rep.Findings = append(rep.Findings, diff.SpanFindings(deltas)...)
		diff.RankFindings(rep.Findings)
		if len(rep.Findings) > *top {
			rep.Findings = rep.Findings[:*top]
		}
	}
	if *benchBase != "" || *benchCur != "" {
		if *benchBase == "" || *benchCur == "" {
			fmt.Fprintln(stderr, "plumdiff: -bench-base and -bench-cur must be given together")
			return 2
		}
		bd, err := diff.CompareBenchFiles(*benchBase, *benchCur, *hostT)
		if err != nil {
			fmt.Fprintf(stderr, "plumdiff: %v\n", err)
			return 1
		}
		rep.Bench = bd
	}

	wroteStdout := false
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "plumdiff: -json: %v\n", err)
			return 1
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			stdout.Write(data)
			wroteStdout = true
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "plumdiff: -json: %v\n", err)
			return 1
		}
	}
	if *mdPath != "" {
		if *mdPath == "-" {
			rep.WriteMarkdown(stdout)
			wroteStdout = true
		} else {
			f, err := os.Create(*mdPath)
			if err != nil {
				fmt.Fprintf(stderr, "plumdiff: -md: %v\n", err)
				return 1
			}
			rep.WriteMarkdown(f)
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "plumdiff: -md: %v\n", err)
				return 1
			}
		}
	}
	if !wroteStdout {
		rep.WriteText(stdout)
	}

	if *gate {
		th := diff.Thresholds{
			SimRatio:          *simT,
			SimAbs:            *simAbs,
			HostRatio:         *hostT,
			RequireComparable: !*noComp,
			FailOnFlip:        *failFlip,
		}
		vs := rep.Gate(th)
		diff.GateSummary(stdout, vs, th)
		if len(vs) > 0 {
			return 1
		}
	}
	return 0
}
