// Command plumbench regenerates every table and figure of the paper's
// evaluation (Section 5) from the reproduction.
//
// Usage:
//
//	plumbench [-paper] [-model flat|smp|fattree|hetero] [-trace file.json]
//	          [-measured] [-scenario names] [-scenario-dir dir]
//	          [-exp all|table1|table2|fig2|fig4|fig5|fig6|fig7|fig8|implicit|machine|feedback|scenarios]
//
// The implicit experiment goes beyond the paper: it drives the
// solve->adapt->balance cycle with a preconditioned-CG workload
// (internal/linalg) whose per-iteration halo exchanges and reductions
// make the partition-quality metrics directly observable as simulated
// communication time, and compares the blocking halo exchange against
// the split-SpMV comm/compute overlap per topology (critical path from
// the event trace).  The machine experiment (internal/machine) also
// goes beyond the paper: it re-runs the rebalancing comparison on
// non-flat topologies (SMP cluster, fat tree, heterogeneous processors)
// and compares the hop-oblivious mapper against the topology-aware
// MapTopo.  -model selects a topology for every other experiment too;
// omitting it keeps the paper's uniform SP2 (bitwise-pinned by the
// golden regression test).  -trace writes the overlapped implicit
// step's event timeline as Chrome-tracing JSON (chrome://tracing,
// ui.perfetto.dev), with message flow arrows from every send to the
// receive that consumed it.
//
// The feedback experiment closes the measured-cost loop: the same
// unsteady implicit run is priced twice — with the paper's analytic
// gain/cost model and with each epoch's decision priced from the
// previous epoch's event-trace profile (internal/profile) — and the
// decisions, prices, and end-to-end simulated times are compared.
// -measured applies the same loop to the implicit experiment itself.
//
// The scenarios experiment generalizes the feedback comparison to the
// declarative workload corpus (internal/scenario, ci/scenarios):
// moving refinement fronts, bursty adaption, transient rank
// stragglers, and multi-job fat-tree contention, each run under both
// pricing modes and summarized in a league table.  -scenario selects
// scenarios by name (comma-separated); -scenario-dir points at an
// alternative corpus.  Because every scenario run is a pure function
// of its spec, the committed corpus's golden ledgers double as the
// balancer's byte-exact regression suite (CI scenario-gate,
// plumdiff -gate).
//
// -spans streams the causal span layer: every epoch-driving world's
// per-rank phase spans (solve, halo, collective, SPAI, refine,
// repartition, migrate...) plus a per-epoch wait-blame summary that
// attributes the critical path's wait time to lagging senders,
// contended links, wire latency, or idleness.  The stream is
// bounded-memory (per-rank span rings spill to the file), byte-
// deterministic, and pure observation.  plumviz -blame renders it;
// -serve exposes it live at /spans.
//
// By default a reduced-scale mesh (~4k elements, P up to 16) reproduces
// the qualitative shapes in seconds; -paper switches to the
// 60,912-element mesh and processor counts up to 64 (several minutes).
// Absolute times come from the simulated SP2-like machine model (see
// internal/msg); the claims under test are shapes and ratios, not
// absolute seconds — EXPERIMENTS.md records both paper and measured
// values side by side.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
	"strings"

	"plum/internal/core"
	"plum/internal/event"
	"plum/internal/machine"
	"plum/internal/obs"
	"plum/internal/report"
	"plum/internal/scenario"
	"plum/internal/solver"
)

// validExps lists the accepted -exp values in presentation order.
// "bench" is the host-performance suite (BENCH_sim.json) and runs only
// when named explicitly — it measures the machine running the
// reproduction, not the machine being reproduced, so "all" excludes
// it; "scenarios" drives the committed workload corpus and is likewise
// explicit-only (its runtime scales with the corpus).
var validExps = []string{"all", "table1", "table2", "fig2", "fig4", "fig5",
	"fig6", "fig7", "fig8", "implicit", "machine", "feedback", "scenarios", "bench"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: exit 0 on success, 1 on I/O errors,
// 2 on usage errors (mirroring cmd/plumdiff).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("plumbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	paper := fs.Bool("paper", false, "run at paper scale (60,912 elements, P up to 64)")
	exp := fs.String("exp", "all", "experiment to run: "+strings.Join(validExps, ", "))
	model := fs.String("model", "", "machine topology for all experiments: "+
		strings.Join(machine.Names(), ", ")+" (default: uniform SP2)")
	trace := fs.String("trace", "", "write Chrome-tracing JSON of the implicit-step event"+
		" timeline to this file (requires -exp all or implicit)")
	measured := fs.Bool("measured", false, "measured-cost feedback loop: run the implicit"+
		" experiment traced and price each epoch's gain/cost decision from the previous"+
		" epoch's profile (off: the paper's analytic pricing, bitwise)")
	benchout := fs.String("benchout", "BENCH_sim.json", "output path for -exp bench"+
		" (machine-readable ns/op, allocs/op, simulated-vs-host ratio)")
	obsPath := fs.String("obs", "", "write a run ledger (JSONL) to this file: manifest,"+
		" one record per adaption epoch of the epoch-driving experiments (implicit,"+
		" feedback, scenarios), host-metrics snapshot, end record with an output checksum."+
		" Observation only: simulated outputs are byte-identical with or without it")
	spansPath := fs.String("spans", "", "stream phase spans (JSONL) to this file: one"+
		" stream per world of the epoch-driving experiments (implicit, feedback,"+
		" scenarios), each rank's timeline cut into nested phase spans with a per-epoch"+
		" wait-blame summary.  Bounded memory (per-rank span ring), deterministic bytes,"+
		" and observation only, like -obs.  Render with plumviz -blame")
	serveAddr := fs.String("serve", "", "serve /metrics (Prometheus text), /runs,"+
		" /healthz, and /debug/pprof on this address during and after the run"+
		" (e.g. 127.0.0.1:9090); the process then stays up until interrupted")
	scenarioSel := fs.String("scenario", "", "comma-separated scenario names to run from"+
		" the corpus (requires -exp scenarios; default: the whole corpus)")
	scenarioDir := fs.String("scenario-dir", defaultScenarioDir, "scenario corpus directory"+
		" of *.json specs (only consulted by -exp scenarios)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	usageError := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "plumbench: "+format+"\n", a...)
		fmt.Fprintf(stderr, "valid -exp values:   %s\n", strings.Join(validExps, ", "))
		fmt.Fprintf(stderr, "valid -model values: %s (default: uniform SP2)\n",
			strings.Join(machine.Names(), ", "))
		fs.Usage()
		return 2
	}

	if fs.NArg() > 0 {
		return usageError("unexpected arguments %q", fs.Args())
	}
	expOK := false
	for _, v := range validExps {
		if *exp == v {
			expOK = true
			break
		}
	}
	if !expOK {
		return usageError("unknown -exp value %q", *exp)
	}
	if *trace != "" && *exp != "all" && *exp != "implicit" {
		return usageError("-trace records the implicit-step timeline; it requires -exp all or implicit, not %q", *exp)
	}
	if *measured && *exp != "all" && *exp != "implicit" {
		// -exp feedback and -exp scenarios always run both pricing modes;
		// only the implicit experiment consults the flag.
		return usageError("-measured drives the implicit experiment's feedback loop; it requires -exp all or implicit, not %q", *exp)
	}
	if *benchout != "BENCH_sim.json" && *exp != "bench" {
		return usageError("-benchout is the -exp bench output path; it requires -exp bench, not %q", *exp)
	}
	if *scenarioSel != "" && *exp != "scenarios" {
		return usageError("-scenario selects from the workload corpus; it requires -exp scenarios, not %q", *exp)
	}
	if *scenarioDir != defaultScenarioDir && *exp != "scenarios" {
		return usageError("-scenario-dir points -exp scenarios at a corpus; it requires -exp scenarios, not %q", *exp)
	}

	// Load and select the scenario corpus before opening any outputs, so
	// a bad name or an unreadable corpus fails fast.
	var specs []*scenario.Spec
	if *exp == "scenarios" {
		var err error
		if specs, err = scenario.LoadDir(*scenarioDir); err != nil {
			fmt.Fprintf(stderr, "plumbench: -scenario-dir: %v\n", err)
			return 1
		}
		if specs, err = selectScenarios(specs, *scenarioSel); err != nil {
			return usageError("%v", err)
		}
	}

	e := core.NewExperiments(*paper)
	if err := e.UseMachine(*model); err != nil {
		return usageError("%v", err)
	}
	e.Measured = *measured

	// The rendered output goes to stdout; with -obs it is teed through a
	// checksum so the ledger's end record ties the JSONL to the exact
	// tables this run printed.
	var w io.Writer = stdout
	var outSum hash.Hash
	if *obsPath != "" {
		m := buildManifest(*paper, *exp, e.ModelName, *measured, e.Global.NumElems(), e.Ps,
			scenarioNames(specs))
		ledger, err := obs.Create(*obsPath, m)
		if err != nil {
			fmt.Fprintf(stderr, "plumbench: -obs: %v\n", err)
			return 1
		}
		e.Obs = ledger
		outSum = sha256.New()
		w = io.MultiWriter(stdout, outSum)
	}
	if *spansPath != "" {
		sink, err := core.CreateSpanSink(*spansPath)
		if err != nil {
			fmt.Fprintf(stderr, "plumbench: -spans: %v\n", err)
			return 1
		}
		e.Spans = sink
	}
	var srv *server
	if *serveAddr != "" {
		var err error
		if srv, err = startServe(*serveAddr, *obsPath, *spansPath); err != nil {
			fmt.Fprintf(stderr, "plumbench: -serve: %v\n", err)
			return 1
		}
	}

	scale := "reduced scale"
	if *paper {
		scale = "paper scale"
	}
	modelName := e.ModelName
	if modelName == "" {
		modelName = "uniform SP2"
	}
	fmt.Fprintf(w, "PLUM reproduction — Oliker & Biswas, SPAA 1997 (%s: %d elements, P in %v, machine: %s)\n\n",
		scale, e.Global.NumElems(), e.Ps, modelName)

	// finishRun seals the span file and the ledger (metrics snapshot +
	// output checksum) and hands off to the serve loop; it runs after ANY
	// experiment path.  Scenario ledgers are regression baselines, so
	// they omit the host-metrics record — everything after the manifest
	// line stays byte-identical across hosts and GOMAXPROCS.
	finishRun := func() int {
		if e.Spans != nil {
			worlds := e.Spans.Worlds()
			if err := e.Spans.Close(); err != nil {
				fmt.Fprintf(stderr, "plumbench: -spans: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "plumbench: wrote span file %s (%d world streams)\n",
				*spansPath, worlds)
		}
		if e.Obs != nil {
			sum := ""
			if outSum != nil {
				sum = hex.EncodeToString(outSum.Sum(nil))
			}
			var metrics map[string]float64
			if *exp != "scenarios" {
				metrics = obs.Default.Snapshot()
			}
			epochs := e.Obs.Epochs()
			if err := e.Obs.Close(metrics, sum); err != nil {
				fmt.Fprintf(stderr, "plumbench: -obs: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "plumbench: wrote ledger %s (%d epochs)\n", *obsPath, epochs)
		}
		if srv != nil {
			srv.finish() // never returns
		}
		return 0
	}

	if *exp == "bench" {
		benchExp(w, e, *benchout)
		return finishRun()
	}
	if *exp == "scenarios" {
		scenariosExp(w, e, specs)
		return finishRun()
	}

	var scaling []core.ScalingRow // shared by fig4/5/6/8
	needScaling := func() []core.ScalingRow {
		if scaling == nil {
			fmt.Fprintln(w, "running the scaling sweep (3 cases x 2 orderings x P sweep)...")
			scaling = e.Scaling()
			fmt.Fprintln(w)
		}
		return scaling
	}

	runExp := func(name string) bool { return *exp == "all" || *exp == name }

	if runExp("table1") {
		table1(w, e)
	}
	if runExp("fig2") {
		fig2(w)
	}
	if runExp("table2") {
		table2(w, e)
	}
	if runExp("fig4") {
		fig4(w, needScaling())
	}
	if runExp("fig5") {
		fig5(w, needScaling())
	}
	if runExp("fig6") {
		fig6(w, needScaling())
	}
	if runExp("fig7") {
		fig7(w, e)
	}
	if runExp("fig8") {
		fig8(w, e, needScaling())
	}
	if runExp("implicit") {
		if code := implicitExp(w, stderr, e, *trace); code != 0 {
			return code
		}
	}
	if runExp("machine") {
		machineExp(w, e)
	}
	if runExp("feedback") {
		feedbackExp(w, e)
	}
	return finishRun()
}

// feedbackExp prints the analytic-vs-measured decision comparison: the
// same unsteady implicit run per topology, priced both ways, epoch by
// epoch.  The acceptance story: the measured loop must change at least
// one decision on a non-flat machine without making the end-to-end
// simulated time worse.
func feedbackExp(w io.Writer, e *core.Experiments) {
	p, cycles := core.DefaultFeedbackProcs, core.DefaultFeedbackCycles
	if len(e.Ps) > 0 && e.Ps[len(e.Ps)-1] < p {
		p = e.Ps[len(e.Ps)-1]
	}
	models := core.FeedbackModels()
	fmt.Fprintf(w, "running the feedback comparison (analytic vs measured pricing, %d epochs x %v, P=%d)...\n",
		cycles, models, p)
	pairs := e.FeedbackComparison(p, cycles, models)
	t := report.NewTable("Feedback: gain/cost decision, analytic vs measured pricing",
		"Model", "epoch", "decision A", "gain A", "cost A",
		"decision M", "gain M", "cost M", "TotalV A/M", "MaxV A/M")
	for _, pr := range pairs {
		for i := range pr.Analytic.Epochs {
			a, m := pr.Analytic.Epochs[i], pr.Measured.Epochs[i]
			mark := " "
			if decision(a) != decision(m) {
				mark = "*"
			}
			t.AddRow(pr.Analytic.Model, fmt.Sprintf("%d%s", i, mark),
				decision(a), fmt.Sprintf("%.4f", a.Gain), fmt.Sprintf("%.4f", a.Cost),
				decision(m), fmt.Sprintf("%.4f", m.Gain), fmt.Sprintf("%.4f", m.Cost),
				fmt.Sprintf("%d/%d", a.TotalV, m.TotalV),
				fmt.Sprintf("%d/%d", a.MaxV, m.MaxV))
		}
	}
	t.Render(w)
	st := report.NewTable("", "Model", "decisions differing", "sim time analytic(s)", "sim time measured(s)", "measured/analytic")
	for _, pr := range pairs {
		ratio := 1.0
		if pr.Analytic.SimTime > 0 {
			ratio = pr.Measured.SimTime / pr.Analytic.SimTime
		}
		st.AddRow(pr.Analytic.Model, pr.DecisionDiffs(),
			fmt.Sprintf("%.4f", pr.Analytic.SimTime),
			fmt.Sprintf("%.4f", pr.Measured.SimTime),
			fmt.Sprintf("%.3f", ratio))
	}
	st.Render(w)
	fmt.Fprintln(w, "epoch 0 always prices analytically (no profile yet); * marks epochs where"+
		" the measured profile changed the decision; the gain side measures the solve"+
		" phase's real per-iteration time (waits and contention included), the cost side"+
		" prices the move with per-message/per-byte rates calibrated from observed sends")
	fmt.Fprintln(w)
}

// decision renders one epoch's rebalancing outcome.
func decision(ep core.FeedbackEpoch) string {
	switch {
	case ep.Balanced:
		return "balanced"
	case ep.Accepted:
		return "accept"
	default:
		return "reject"
	}
}

func machineExp(w io.Writer, e *core.Experiments) {
	fmt.Fprintln(w, "running the machine sweep (4 topologies x 2 mappers x P sweep, Real_2)...")
	rows := e.MachineSweep(0.33, machine.Names(), core.MachineMappers())
	t := report.NewTable("Machine sweep: hop-weighted data movement by topology and mapper",
		"Model", "P", "Mapper", "HopMaxV", "HopTotalV", "Moved", "Remap(s)", "Improvement")
	for _, r := range rows {
		t.AddRow(r.Model, r.P, r.Mapper.String(), r.HopMaxV, r.HopTotalV, r.Moved,
			fmt.Sprintf("%.4f", r.RemapTime), fmt.Sprintf("%.2f", r.Improvement))
	}
	t.Render(w)

	// Fig. 8-style improvement curves, one per topology (MapTopo).
	var series []report.Series
	for _, name := range machine.Names() {
		s := report.Series{Name: name}
		for _, r := range rows {
			if r.Model == name && r.Mapper == core.MapTopo {
				s.X = append(s.X, float64(r.P))
				s.Y = append(s.Y, r.Improvement)
			}
		}
		series = append(series, s)
	}
	report.Plot(w, "Load-balancing improvement by topology (MapTopo mapper)",
		"P", "improvement", series, 12)
	fmt.Fprintln(w, "shape: MapTopo matches HeuMWBG movement on the flat machine and"+
		" strictly lowers hop-weighted MaxV on the SMP cluster and fat tree"+
		" (single-node P=4 SMP is all-intra, so the mappers tie there);"+
		" cheap intra-node links also make the same migration cheaper on smp than flat")
	fmt.Fprintln(w)
}

func implicitExp(w, stderr io.Writer, e *core.Experiments, tracePath string) int {
	fmt.Fprintln(w, "running the implicit workload (PCG on the adapted mesh, 2 cycles x P sweep)...")
	rows := e.ImplicitScaling(2)
	t := report.NewTable("Implicit workload: PCG-backed solve->adapt->balance cycle",
		"P", "PCG iters", "conv", "Solve(s)", "Adapt(s)", "Remap(s)",
		"WorkBal", "EdgeCut", "CommVol")
	for _, r := range rows {
		t.AddRow(r.P, r.PCGIters, r.Converged,
			fmt.Sprintf("%.4f", r.SolverTime), fmt.Sprintf("%.4f", r.AdaptTime),
			fmt.Sprintf("%.4f", r.RemapTime), fmt.Sprintf("%.3f", r.WorkBalance),
			r.EdgeCut, r.CommVolume)
	}
	t.Render(w)
	fmt.Fprintln(w, "note: iteration counts are bitwise identical across P (exact reductions);"+
		" Solve(s) is where the partition's CommVolume becomes measurable time")
	fmt.Fprintln(w)

	p := 8
	if len(e.Ps) > 0 && e.Ps[len(e.Ps)-1] < 8 {
		p = e.Ps[len(e.Ps)-1]
	}
	fmt.Fprintf(w, "preconditioner comparison at P=%d (one implicit step, %d-component field)...\n", p, solver.NComp)
	pr := e.PrecondComparison(p)
	pt := report.NewTable("", "Preconditioner", "PCG iters", "converged", "final ||r||/||r0||", "Solve(s)")
	var series []report.Series
	for _, r := range pr {
		pt.AddRow(r.Precond, r.Iterations, r.Converged,
			fmt.Sprintf("%.2e", r.RelResid), fmt.Sprintf("%.4f", r.SolveTime))
		series = append(series, report.ResidualSeries(r.Precond, r.Residuals))
	}
	pt.Render(w)
	report.Plot(w, "PCG convergence by preconditioner (last component solve)",
		"iteration", "log10 ||r||/||r0||", series, 12)
	fmt.Fprintln(w, "shape: SPAI trades setup for the fewest iterations; Jacobi beats"+
		" unpreconditioned CG at negligible cost (cf. Jia & Zhang on SPAI-class"+
		" preconditioning for irregular sparse systems)")
	fmt.Fprintln(w)

	fmt.Fprintf(w, "comm/compute overlap at P=%d (blocking vs split-SpMV halo overlap, per topology)...\n", p)
	ov := e.OverlapComparison(p, machine.Names())
	ot := report.NewTable("Overlap: simulated critical path, blocking vs overlapped PCG",
		"Model", "PCG iters", "CP block(s)", "CP overlap(s)", "speedup",
		"wait block(s)", "wait overlap(s)")
	for _, r := range ov {
		ot.AddRow(r.Model, r.Iters,
			fmt.Sprintf("%.4f", r.CPBlocking), fmt.Sprintf("%.4f", r.CPOverlap),
			fmt.Sprintf("%.3fx", r.Speedup()),
			fmt.Sprintf("%.4f", r.WaitBlocking), fmt.Sprintf("%.4f", r.WaitOverlap))
	}
	ot.Render(w)
	fmt.Fprintln(w, "shape: iterates are bitwise identical in both modes; overlap pays where"+
		" wire/contention time survives the per-message software overhead (smp inter-node"+
		" links, the tapered fat tree's up-links) and is honestly a no-op on the flat SP2,"+
		" whose halo arrivals always beat the receiver's own injection+copy timeline")
	fmt.Fprintln(w)

	if tracePath != "" {
		// The overlapped run of the selected model was just traced by the
		// comparison above; export that trace instead of repeating the
		// (deterministic, identical) simulation.
		selected := e.ModelName
		if selected == "" {
			selected = "flat"
		}
		var tr *event.Trace
		for _, r := range ov {
			if r.Model == selected {
				tr = r.TraceOverlapped
				break
			}
		}
		if tr == nil {
			tr = e.TraceImplicitStep(p, true)
		}
		if err := tr.WriteChromeFile(tracePath); err != nil {
			fmt.Fprintf(stderr, "plumbench: -trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(w, "wrote %s (%d events; open in chrome://tracing or ui.perfetto.dev)\n\n",
			tracePath, len(tr.Records))
	}
	return 0
}

func table1(w io.Writer, e *core.Experiments) {
	t := report.NewTable("Table 1: grid sizes for the three refinement strategies",
		"Case", "Vertices", "Elements", "Edges", "BdyFaces", "Growth G")
	for _, r := range e.Table1() {
		t.AddRow(r.Case, r.Verts, r.Elems, r.Edges, r.BFaces, fmt.Sprintf("%.3f", r.Growth))
	}
	t.Render(w)
	fmt.Fprintln(w, "paper: Initial 13,967/60,968/78,343/6,818; Real_1 G=1.353;"+
		" Real_2 G=3.310; Real_3 G=5.279 (rotor mesh; ours is the synthetic box)")
	fmt.Fprintln(w)
}

func fig2(w io.Writer) {
	r := core.Fig2()
	fmt.Fprintln(w, "Figure 2: similarity-matrix worked example (structural reproduction)")
	fmt.Fprintln(w, "  S =")
	for i, row := range r.S.S {
		fmt.Fprintf(w, "    proc %d: %4v\n", i, row)
	}
	t := report.NewTable("", "Mapper", "Assignment (part->proc)", "F (objective)",
		"Ctotal", "Ntotal", "Cmax", "Nmax")
	names := []string{"OptMWBG (TotalV)", "HeuMWBG (TotalV)", "OptBMCM (MaxV)"}
	for i, n := range names {
		c := r.Costs[i]
		t.AddRow(n, fmt.Sprintf("%v", r.Assign[i]), c.Objective, c.CTotal, c.NTotal, c.CMax, c.NMax)
	}
	t.Render(w)
	fmt.Fprintf(w, "theorem check: 2*Heu(%d) >= Opt(%d): %v\n\n",
		r.ObjectiveHeu, r.ObjectiveOpt, r.HeuristicBoundHolds)
}

func table2(w io.Writer, e *core.Experiments) {
	fmt.Fprintln(w, "running Table 2 (Real_2, three mappers per P)...")
	rows := e.Table2(0.33)
	t := report.NewTable("Table 2: mapper comparison, Real_2 strategy",
		"P", "MaxSent(MWBG)", "Opt elems", "Opt time(s)",
		"Heu elems", "Heu time(s)", "BMCM elems", "BMCM time(s)", "BMCM MaxSent")
	for _, r := range rows {
		t.AddRow(r.P, r.MaxSent,
			r.Opt.TotalElems, fmt.Sprintf("%.6f", r.Opt.Wall),
			r.Heu.TotalElems, fmt.Sprintf("%.6f", r.Heu.Wall),
			r.Bmcm.TotalElems, fmt.Sprintf("%.6f", r.Bmcm.Wall), r.Bmcm.MaxSent)
	}
	t.Render(w)
	fmt.Fprintln(w, "paper shape: Heu ~= Opt in volume at ~10x less time; BMCM lowest"+
		" bottleneck, highest volume and time; times grow with P")
	fmt.Fprintln(w)
}

func fig4(w io.Writer, rows []core.ScalingRow) {
	var series []report.Series
	for _, cs := range []string{"Real_1", "Real_2", "Real_3"} {
		for _, before := range []bool{true, false} {
			s := report.Series{Name: seriesName(cs, before)}
			for _, r := range rows {
				if r.Case == cs && r.RemapBefore == before {
					s.X = append(s.X, float64(r.P))
					s.Y = append(s.Y, r.Speedup)
				}
			}
			series = append(series, s)
		}
	}
	report.Plot(w, "Figure 4: parallel mesh adaptor speedup (remap before vs after refinement)",
		"P", "speedup", series, 16)
	t := report.NewTable("", "Case", "P", "Speedup(before)", "Speedup(after)")
	tabulatePairs(t, rows, func(r core.ScalingRow) float64 { return r.Speedup })
	t.Render(w)
}

func fig5(w io.Writer, rows []core.ScalingRow) {
	t := report.NewTable("Figure 5: remapping time (simulated seconds)",
		"Case", "P", "Remap(before)", "Remap(after)", "after/before")
	for _, cs := range []string{"Real_1", "Real_2", "Real_3"} {
		for _, r := range rows {
			if r.Case != cs || !r.RemapBefore || r.P == 1 {
				continue
			}
			after := lookup(rows, cs, r.P, false).RemapTime
			ratio := math.Inf(1)
			if r.RemapTime > 0 {
				ratio = after / r.RemapTime
			}
			t.AddRow(cs, r.P, fmt.Sprintf("%.4f", r.RemapTime), fmt.Sprintf("%.4f", after),
				fmt.Sprintf("%.2f", ratio))
		}
	}
	t.Render(w)
	io.WriteString(w, "paper shape: remapping before refinement is uniformly cheaper;"+
		" biggest absolute win for Real_3 (3.71s -> 1.03s on 64 procs)\n\n")
}

func fig6(w io.Writer, rows []core.ScalingRow) {
	t := report.NewTable("Figure 6: anatomy of execution time, remap-before (simulated seconds)",
		"Case", "P", "Adaption", "Partitioning", "Remapping")
	for _, cs := range []string{"Real_1", "Real_2", "Real_3"} {
		for _, r := range rows {
			if r.Case == cs && r.RemapBefore {
				t.AddRow(cs, r.P, fmt.Sprintf("%.4f", r.AdaptTime),
					fmt.Sprintf("%.4f", r.PartTime), fmt.Sprintf("%.4f", r.RemapTime))
			}
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "paper shape: partitioning nearly flat in P with a shallow minimum"+
		" (~16 procs); phases comparable at large P; no single bottleneck")
	fmt.Fprintln(w)
}

func fig7(w io.Writer, e *core.Experiments) {
	var series []report.Series
	for _, g := range []float64{1.353, 3.310, 5.279} {
		s := report.Series{Name: fmt.Sprintf("G=%.3f", g)}
		for _, p := range e.Ps {
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, core.MaxImprovement(p, g))
		}
		series = append(series, s)
	}
	report.Plot(w, "Figure 7: maximum impact of load balancing, min(8, P(G-1)+1)/G",
		"P", "improvement", series, 14)
	t := report.NewTable("", "P", "G=1.353", "G=3.310", "G=5.279")
	for _, p := range e.Ps {
		t.AddRow(p,
			fmt.Sprintf("%.2f", core.MaxImprovement(p, 1.353)),
			fmt.Sprintf("%.2f", core.MaxImprovement(p, 3.310)),
			fmt.Sprintf("%.2f", core.MaxImprovement(p, 5.279)))
	}
	t.Render(w)
	fmt.Fprintln(w, "paper: saturation at 5.91 (P>=20), 2.42 (P>=4), 1.52 (P>=2)")
	fmt.Fprintln(w)
}

func fig8(w io.Writer, e *core.Experiments, rows []core.ScalingRow) {
	t := report.NewTable("Figure 8: actual impact of load balancing on solver time",
		"Case", "P", "Improvement", "Analytic max")
	for _, cs := range []string{"Real_1", "Real_2", "Real_3"} {
		for _, r := range rows {
			if r.Case == cs && r.RemapBefore {
				t.AddRow(cs, r.P, fmt.Sprintf("%.2f", r.Improvement),
					fmt.Sprintf("%.2f", core.MaxImprovement(r.P, r.Growth)))
			}
		}
	}
	t.Render(w)
	fmt.Fprintln(w, "paper: 3.46 / 2.03 / 1.52 on 64 procs; Real_3 attains its maximum"+
		" first, Real_1 keeps growing with P")
	fmt.Fprintln(w)
	_ = e
}

func seriesName(cs string, before bool) string {
	if before {
		return cs + "/before"
	}
	return cs + "/after"
}

func lookup(rows []core.ScalingRow, cs string, p int, before bool) core.ScalingRow {
	for _, r := range rows {
		if r.Case == cs && r.P == p && r.RemapBefore == before {
			return r
		}
	}
	return core.ScalingRow{}
}

func tabulatePairs(t *report.Table, rows []core.ScalingRow, f func(core.ScalingRow) float64) {
	for _, cs := range []string{"Real_1", "Real_2", "Real_3"} {
		for _, r := range rows {
			if r.Case != cs || !r.RemapBefore {
				continue
			}
			after := lookup(rows, cs, r.P, false)
			t.AddRow(cs, r.P, fmt.Sprintf("%.2f", f(r)), fmt.Sprintf("%.2f", f(after)))
		}
	}
}
