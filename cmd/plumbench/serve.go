package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"

	"plum/internal/serve"
)

// The -serve mode: a host-plane HTTP endpoint that stays up while the
// experiments run (and afterwards, until killed).  The handlers
// themselves — /metrics, /runs, /spans, /diff, /healthz, /debug/pprof —
// live in internal/serve (ObsState.Register) and are the same surface
// plumserve mounts, so the two servers cannot drift; this file only
// binds the listener and tracks run completion for /healthz.

// server publishes the registry and ledger directory over HTTP.
type server struct {
	addr string // bound listen address (resolves ":0" for tests)
	done atomic.Bool
}

// startServe binds addr synchronously (so a bad address fails the run
// before any experiment starts) and serves in the background.
func startServe(addr, ledgerPath, spansPath string) (*server, error) {
	dir := "."
	if ledgerPath != "" {
		dir = filepath.Dir(ledgerPath)
	}
	s := &server{}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.addr = ln.Addr().String()
	obsState := &serve.ObsState{
		Dir:    dir,
		Ledger: ledgerPath,
		Spans:  spansPath,
		Health: func() string {
			if s.done.Load() {
				return "done"
			}
			return "running"
		},
	}
	mux := http.NewServeMux()
	obsState.Register(mux)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "plumbench: -serve: %v\n", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "plumbench: serving /metrics, /runs, /spans, /diff, /healthz, /debug/pprof on %s\n",
		ln.Addr())
	return s, nil
}

// finish marks the run complete and blocks forever: -serve keeps the
// endpoint up for post-run scraping until the process is killed.
func (s *server) finish() {
	s.done.Store(true)
	fmt.Fprintln(os.Stderr, "plumbench: experiments done; still serving (interrupt to exit)")
	select {}
}
