package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync/atomic"

	"plum/internal/obs"
)

// The -serve mode: a host-plane HTTP endpoint that stays up while the
// experiments run (and afterwards, until killed), the stepping stone to
// the ROADMAP's long-running plumserve.  Everything served is host
// data — the registry, run ledgers on disk, the Go profiler — so
// scraping it cannot perturb a simulated run in progress.
//
//	/metrics        the obs registry, Prometheus text exposition
//	/runs           JSON listing of *.jsonl ledgers in the ledger dir
//	/healthz        {"status":"running"|"done"} — CI polls this
//	/debug/pprof/*  the standard Go profiler endpoints

// server publishes the registry and ledger directory over HTTP.
type server struct {
	dir  string // directory listed by /runs
	done atomic.Bool
}

// startServe binds addr synchronously (so a bad address fails the run
// before any experiment starts) and serves in the background.
func startServe(addr, ledgerPath string) (*server, error) {
	dir := "."
	if ledgerPath != "" {
		dir = filepath.Dir(ledgerPath)
	}
	s := &server{dir: dir}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "running"
		if s.done.Load() {
			status = "done"
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "plumbench: -serve: %v\n", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "plumbench: serving /metrics, /runs, /healthz, /debug/pprof on %s\n",
		ln.Addr())
	return s, nil
}

// runEntry is one /runs listing line.
type runEntry struct {
	File   string `json:"file"`
	Size   int64  `json:"size"`
	Epochs int    `json:"epochs,omitempty"`
	Error  string `json:"error,omitempty"` // unreadable or still-streaming ledger
}

// handleRuns lists the ledgers next to the -obs path.  A ledger being
// written concurrently fails validation (no end record yet) — that is
// reported per entry, not as a request failure.
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	paths, _ := filepath.Glob(filepath.Join(s.dir, "*.jsonl"))
	entries := []runEntry{}
	for _, p := range paths {
		e := runEntry{File: filepath.Base(p)}
		if fi, err := os.Stat(p); err == nil {
			e.Size = fi.Size()
		}
		if lf, err := obs.ReadLedgerFile(p); err != nil {
			e.Error = err.Error()
		} else {
			e.Epochs = len(lf.Epochs)
		}
		entries = append(entries, e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(entries)
}

// finish marks the run complete and blocks forever: -serve keeps the
// endpoint up for post-run scraping until the process is killed.
func (s *server) finish() {
	s.done.Store(true)
	fmt.Fprintln(os.Stderr, "plumbench: experiments done; still serving (interrupt to exit)")
	select {}
}
