package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sync/atomic"

	"plum/internal/event"
	"plum/internal/obs"
	"plum/internal/obs/diff"
)

// The -serve mode: a host-plane HTTP endpoint that stays up while the
// experiments run (and afterwards, until killed), the stepping stone to
// the ROADMAP's long-running plumserve.  Everything served is host
// data — the registry, run ledgers on disk, the Go profiler — so
// scraping it cannot perturb a simulated run in progress.
//
//	/metrics        the obs registry, Prometheus text exposition
//	/runs           JSON listing of *.jsonl ledgers in the ledger dir
//	/spans          JSON summary of the -spans file (worlds, blame)
//	/diff           differential analysis vs ?base=<ledger in the dir>
//	/healthz        {"status":"running"|"done"} — CI polls this
//	/debug/pprof/*  the standard Go profiler endpoints

// server publishes the registry and ledger directory over HTTP.
type server struct {
	dir    string // directory listed by /runs
	ledger string // this run's -obs ledger (the "current" side of /diff)
	spans  string // the -spans file served by /spans ("" = none)
	addr   string // bound listen address (resolves ":0" for tests)
	done   atomic.Bool
}

// startServe binds addr synchronously (so a bad address fails the run
// before any experiment starts) and serves in the background.
func startServe(addr, ledgerPath, spansPath string) (*server, error) {
	dir := "."
	if ledgerPath != "" {
		dir = filepath.Dir(ledgerPath)
	}
	s := &server{dir: dir, ledger: ledgerPath, spans: spansPath}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "running"
		if s.done.Load() {
			status = "done"
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":%q}\n", status)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "plumbench: -serve: %v\n", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "plumbench: serving /metrics, /runs, /spans, /diff, /healthz, /debug/pprof on %s\n",
		ln.Addr())
	return s, nil
}

// runEntry is one /runs listing line.
type runEntry struct {
	File      string `json:"file"`
	Size      int64  `json:"size"`
	Epochs    int    `json:"epochs,omitempty"`
	Streaming bool   `json:"streaming,omitempty"` // no end record yet (run in progress)
	Error     string `json:"error,omitempty"`     // unreadable ledger
}

// handleRuns lists the ledgers next to the -obs path.  A ledger being
// written concurrently has no end record yet; the lenient reader
// reports the epochs flushed so far with Streaming set, so a live
// scrape sees progress instead of an error.
func (s *server) handleRuns(w http.ResponseWriter, r *http.Request) {
	paths, _ := filepath.Glob(filepath.Join(s.dir, "*.jsonl"))
	entries := []runEntry{}
	for _, p := range paths {
		e := runEntry{File: filepath.Base(p)}
		if fi, err := os.Stat(p); err == nil {
			e.Size = fi.Size()
		}
		if lf, trunc, err := obs.ReadLedgerFileLenient(p); err != nil {
			e.Error = err.Error()
		} else {
			e.Epochs = len(lf.Epochs)
			e.Streaming = trunc
		}
		entries = append(entries, e)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(entries)
}

// spanWorldEntry is one world stream of the /spans response: the stream
// header plus the bounded per-epoch blame summaries — never the spans
// themselves, which may number millions.
type spanWorldEntry struct {
	Label      map[string]string  `json:"label,omitempty"`
	P          int                `json:"p"`
	Ring       int                `json:"ring"`
	Sample     int                `json:"sample"`
	Spans      int                `json:"spans"`
	Epochs     int                `json:"epochs"`
	SampledOut int64              `json:"sampled_out,omitempty"`
	Complete   bool               `json:"complete"`
	Blame      []event.EpochBlame `json:"blame,omitempty"`
}

// handleSpans summarizes the -spans file.  The reader tolerates a file
// still being appended to (incomplete trailing stream), so live scrapes
// during a run see every world flushed so far.
func (s *server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.spans == "" {
		http.Error(w, "no -spans file for this run", http.StatusNotFound)
		return
	}
	worlds, err := event.ReadSpansFile(s.spans)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	entries := make([]spanWorldEntry, len(worlds))
	for i, sw := range worlds {
		entries[i] = spanWorldEntry{
			Label: sw.Label, P: sw.P, Ring: sw.Ring, Sample: sw.Sample,
			Spans: len(sw.Spans), Epochs: sw.Epochs,
			SampledOut: sw.SampledOut, Complete: sw.Complete,
			Blame: sw.Blame,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(entries)
}

// handleDiff runs an exact differential analysis of this run's -obs
// ledger against a base ledger from the same directory:
//
//	/diff?base=<file>&format=text|md|json
//
// The base is confined to the ledger directory (a bare file name, as
// listed by /runs) so the endpoint cannot read arbitrary paths.  Both
// sides read leniently — diffing against a run still in progress
// compares the epochs flushed so far.
func (s *server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if s.ledger == "" {
		http.Error(w, "no -obs ledger for this run", http.StatusNotFound)
		return
	}
	base := r.URL.Query().Get("base")
	if base == "" {
		http.Error(w, "missing ?base=<ledger file> (see /runs for candidates)", http.StatusBadRequest)
		return
	}
	if base != filepath.Base(base) || base == "." || base == ".." {
		http.Error(w, "base must be a bare file name in the ledger directory", http.StatusBadRequest)
		return
	}
	basePath := filepath.Join(s.dir, base)
	rep, err := diff.LedgerFiles(basePath, s.ledger, true, diff.Options{Metrics: true})
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rep.WriteText(w)
	case "md":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		rep.WriteMarkdown(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	default:
		http.Error(w, "format must be text, md, or json", http.StatusBadRequest)
	}
}

// finish marks the run complete and blocks forever: -serve keeps the
// endpoint up for post-run scraping until the process is killed.
func (s *server) finish() {
	s.done.Store(true)
	fmt.Fprintln(os.Stderr, "plumbench: experiments done; still serving (interrupt to exit)")
	select {}
}
