package main

import (
	"fmt"
	"io"
	"strings"

	"plum/internal/core"
	"plum/internal/report"
	"plum/internal/scenario"
)

// The scenarios experiment: the committed workload corpus driven under
// both pricing modes and summarized as a league table.  Every output
// line is a pure function of (corpus, selection), so the rendered table
// and the -obs ledger are byte-reproducible — the property the CI
// scenario-gate byte-verifies against the committed goldens.

// defaultScenarioDir is the committed corpus location, relative to the
// repo root (where CI and the Makefile invoke plumbench).
const defaultScenarioDir = "ci/scenarios"

// selectScenarios filters the corpus by the -scenario flag: a
// comma-separated name list, empty meaning the whole corpus.  Unknown
// names are usage errors that list the corpus.
func selectScenarios(specs []*scenario.Spec, sel string) ([]*scenario.Spec, error) {
	if sel == "" {
		return specs, nil
	}
	byName := make(map[string]*scenario.Spec, len(specs))
	for _, sp := range specs {
		byName[sp.Name] = sp
	}
	var out []*scenario.Spec
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		sp, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q; corpus: %s",
				name, strings.Join(scenarioNames(specs), ", "))
		}
		out = append(out, sp)
	}
	return out, nil
}

// scenarioNames lists the specs' names in corpus order.
func scenarioNames(specs []*scenario.Spec) []string {
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	return names
}

// decisionString renders a run's epoch decisions compactly: one letter
// per epoch — B(alanced), A(ccept), R(eject).
func decisionString(run core.FeedbackRun) string {
	var b strings.Builder
	for _, ep := range run.Epochs {
		switch {
		case ep.Balanced:
			b.WriteByte('B')
		case ep.Accepted:
			b.WriteByte('A')
		default:
			b.WriteByte('R')
		}
	}
	return b.String()
}

// scenarioVerdict names which pricing mode won a scenario end to end.
// The plane is exact (simulated seconds), so any difference is real;
// the 0.1% band only keeps the label honest when the decisions agreed
// and the times are equal by construction.
func scenarioVerdict(pr core.ScenarioPair) string {
	a, m := pr.Analytic.SimTime, pr.Measured.SimTime
	switch {
	case a <= 0 || m <= 0:
		return "n/a"
	case m < a*0.999:
		return "measured"
	case a < m*0.999:
		return "analytic"
	default:
		return "tie"
	}
}

// scenariosExp runs the selected corpus under both pricing modes and
// renders the league table.
func scenariosExp(w io.Writer, e *core.Experiments, specs []*scenario.Spec) {
	fmt.Fprintf(w, "running the scenario corpus (%d scenarios x analytic/measured pricing)...\n",
		len(specs))
	pairs := e.Scenarios(specs)
	t := report.NewTable("Scenario league: analytic vs measured pricing per unsteady workload",
		"Scenario", "Kind", "Model", "Mapper", "P", "Cycles", "decisions A", "decisions M",
		"diff", "sim A(s)", "sim M(s)", "M/A", "verdict")
	for _, pr := range pairs {
		sp := pr.Spec
		ratio := 1.0
		if pr.Analytic.SimTime > 0 {
			ratio = pr.Measured.SimTime / pr.Analytic.SimTime
		}
		t.AddRow(sp.Name, sp.Kind, sp.Model, sp.Mapper, sp.P, sp.Cycles,
			decisionString(pr.Analytic), decisionString(pr.Measured),
			pr.DecisionDiffs(),
			fmt.Sprintf("%.4f", pr.Analytic.SimTime),
			fmt.Sprintf("%.4f", pr.Measured.SimTime),
			fmt.Sprintf("%.3f", ratio), scenarioVerdict(pr))
	}
	t.Render(w)
	fmt.Fprintln(w, "decisions: one letter per epoch — B(alanced), A(ccept), R(eject); diff counts"+
		" epochs where the pricing modes decided differently (epoch 0 always prices"+
		" analytically); sim times are end-to-end simulated makespans, so the verdict"+
		" column is exact, not sampled")
	fmt.Fprintln(w)
}
