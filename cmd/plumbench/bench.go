package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"plum/internal/core"
	"plum/internal/linalg"
	"plum/internal/msg"
	"plum/internal/report"
)

// The bench experiment: machine-readable host-performance numbers for
// the simulation stack's hot paths, written to BENCH_sim.json.  Where
// `go test -bench` measures the same paths interactively, this command
// seeds the repo's perf trajectory: CI runs it on every push and uploads
// the artifact, so regressions in ns/op, allocs/op, or the
// simulated-vs-host throughput ratio are visible as a series.
//
// The simulated-vs-host ratio is the simulator's figure of merit: how
// many simulated seconds one host second buys.  It is what bounds how
// many epochs, models, and mesh sizes an experiment sweep can afford.

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// SimSecondsPerOp is the simulated time one op covers (0 for
	// host-only kernels like the exact accumulator).
	SimSecondsPerOp float64 `json:"sim_seconds_per_op,omitempty"`
	// SimHostRatio is simulated seconds per host second.
	SimHostRatio float64 `json:"sim_host_ratio,omitempty"`
}

// BenchReport is the BENCH_sim.json document.  The provenance fields
// (git revision, CPU count, timestamp) make one artifact comparable
// against another in a perf series — same revision, different machine,
// or same machine, different revision.
type BenchReport struct {
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	GitSHA     string        `json:"git_sha"`
	Timestamp  string        `json:"timestamp"` // RFC3339 UTC
	Benchmarks []BenchResult `json:"benchmarks"`
}

// measure runs op iters times and reports host ns/op, allocs/op, and
// the simulated-vs-host ratio from the simulated seconds op returns.
func measure(name string, iters int, op func() float64) BenchResult {
	op() // warm caches and lazy initialization outside the window
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var sim float64
	for i := 0; i < iters; i++ {
		sim += op()
	}
	host := time.Since(start)
	runtime.ReadMemStats(&m1)
	r := BenchResult{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(host.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
	}
	if sim > 0 {
		r.SimSecondsPerOp = sim / float64(iters)
		if s := host.Seconds(); s > 0 {
			r.SimHostRatio = sim / s
		}
	}
	return r
}

// benchExp runs the hot-path benchmark suite and writes outPath.
func benchExp(w io.Writer, e *core.Experiments, outPath string) {
	fmt.Fprintf(w, "running the host-performance benchmarks (%d host threads)...\n\n", runtime.GOMAXPROCS(0))

	allreduce := func(c *msg.Comm) {
		for i := 0; i < 50; i++ {
			c.Compute(100)
			c.AllreduceFloat64(float64(c.Rank()), msg.SumFloat64)
		}
	}
	x := make([]float64, 1<<16)
	y := make([]float64, 1<<16)
	for i := range x {
		x[i] = float64(i%17)*0.25 - 1
		y[i] = float64(i%13)*0.5 - 2
	}

	results := []BenchResult{
		measure("msg-allreduce/untraced-P8", 20, func() float64 {
			return msg.MaxTime(msg.RunModel(8, msg.SP2Model(), allreduce))
		}),
		measure("msg-allreduce/traced-P8", 20, func() float64 {
			times, _ := msg.RunTraced(8, msg.SP2Model(), allreduce)
			return msg.MaxTime(times)
		}),
		measure("exact-dot/n-65536", 20, func() float64 {
			benchDotSink = linalg.ExactDot(x, y)
			return 0
		}),
		measure("adaption-step/fattree-P8", 3, func() float64 {
			if err := e.UseMachine("fattree"); err != nil {
				panic(err)
			}
			st := e.RunStep(8, 0.33, true, core.MapHeuristic)
			return st.MarkTime + st.PartitionTime + st.ReassignTime + st.RemapTime + st.RefineTime
		}),
		measure("overlap-pcg/smp-P8", 1, func() float64 {
			rows := e.OverlapComparison(8, []string{"smp"})
			return rows[0].CPOverlap
		}),
	}
	if err := e.UseMachine(""); err != nil {
		panic(err) // restore the default model for any following experiment
	}

	t := report.NewTable("Host performance (see "+outPath+")",
		"Benchmark", "iters", "ns/op", "allocs/op", "sim-s/op", "sim/host")
	for _, r := range results {
		simS, ratio := "-", "-"
		if r.SimSecondsPerOp > 0 {
			simS = fmt.Sprintf("%.4f", r.SimSecondsPerOp)
			ratio = fmt.Sprintf("%.2f", r.SimHostRatio)
		}
		t.AddRow(r.Name, r.Iterations, fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.AllocsPerOp), simS, ratio)
	}
	t.Render(w)

	doc := BenchReport{
		GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		GitSHA:     gitRevision(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: results,
	}
	f, err := os.Create(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plumbench: -exp bench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "plumbench: -exp bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(w, "wrote %s\n\n", outPath)
}

var benchDotSink float64
