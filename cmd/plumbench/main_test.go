package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"plum/internal/core"
)

// testCorpusDir points at the committed corpus from the package
// directory (tests run with the package as cwd, not the repo root).
const testCorpusDir = "../../ci/scenarios"

// TestUsageExitCodes: flag validation mirrors cmd/plumdiff — exit 2
// with a usage message on stderr for every malformed invocation, exit 1
// for I/O failures.  Each row fails before any experiment runs, so the
// whole table is milliseconds.
func TestUsageExitCodes(t *testing.T) {
	emptyDir := t.TempDir()
	cases := []struct {
		name string
		args []string
		code int
		want string // substring of stderr
	}{
		{"unknown exp", []string{"-exp", "fig99"}, 2, "unknown -exp value"},
		{"stray args", []string{"-exp", "table1", "extra"}, 2, "unexpected arguments"},
		{"undefined flag", []string{"-frobnicate"}, 2, "flag provided but not defined"},
		{"trace without implicit", []string{"-exp", "table1", "-trace", "t.json"}, 2, "-trace"},
		{"measured without implicit", []string{"-exp", "feedback", "-measured"}, 2, "-measured"},
		{"measured with scenarios", []string{"-exp", "scenarios", "-measured"}, 2, "-measured"},
		{"benchout without bench", []string{"-exp", "table1", "-benchout", "b.json"}, 2, "-benchout"},
		{"scenario without scenarios exp", []string{"-scenario", "front-sweep"}, 2,
			"-scenario selects from the workload corpus"},
		{"scenario with wrong exp", []string{"-exp", "feedback", "-scenario", "front-sweep"}, 2,
			"requires -exp scenarios"},
		{"scenario-dir without scenarios exp", []string{"-exp", "table1", "-scenario-dir", emptyDir}, 2,
			"-scenario-dir"},
		{"empty corpus dir", []string{"-exp", "scenarios", "-scenario-dir", emptyDir}, 1,
			"no *.json specs"},
		{"missing corpus dir", []string{"-exp", "scenarios",
			"-scenario-dir", filepath.Join(emptyDir, "nope")}, 1, "no *.json specs"},
		{"unknown scenario name", []string{"-exp", "scenarios", "-scenario-dir", testCorpusDir,
			"-scenario", "no-such-scenario"}, 2, `unknown scenario "no-such-scenario"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != tc.code {
				t.Fatalf("run(%q) = %d, want %d; stderr: %s", tc.args, code, tc.code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr lacks %q:\n%s", tc.want, errb.String())
			}
		})
	}
}

// TestUnknownScenarioListsCorpus: the usage error for a bad -scenario
// name must list the committed corpus so the caller can correct it.
func TestUnknownScenarioListsCorpus(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "scenarios", "-scenario-dir", testCorpusDir,
		"-scenario", "typo"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, name := range []string{"front-sweep", "burst-shock", "straggler-pair", "multijob-duty"} {
		if !strings.Contains(errb.String(), name) {
			t.Errorf("corpus listing lacks %q:\n%s", name, errb.String())
		}
	}
}

// TestDecisionString renders the epoch decisions compactly.
func TestDecisionString(t *testing.T) {
	run := core.FeedbackRun{Epochs: []core.FeedbackEpoch{
		{Balanced: true}, {Accepted: true}, {}, {Accepted: true},
	}}
	if got := decisionString(run); got != "BARA" {
		t.Errorf("decisionString = %q, want BARA", got)
	}
}

// TestScenarioVerdict: the 0.1% band labels ties honestly and degrades
// to n/a when a run produced no simulated time.
func TestScenarioVerdict(t *testing.T) {
	pair := func(a, m float64) core.ScenarioPair {
		var p core.ScenarioPair
		p.Analytic.SimTime, p.Measured.SimTime = a, m
		return p
	}
	cases := []struct {
		a, m float64
		want string
	}{
		{1.0, 0.9, "measured"},
		{0.9, 1.0, "analytic"},
		{1.0, 1.0, "tie"},
		{1.0, 1.0005, "tie"},
		{0, 1.0, "n/a"},
	}
	for _, tc := range cases {
		if got := scenarioVerdict(pair(tc.a, tc.m)); got != tc.want {
			t.Errorf("scenarioVerdict(%v, %v) = %q, want %q", tc.a, tc.m, got, tc.want)
		}
	}
}

// runScenarioCorpus drives the full committed corpus through the real
// entrypoint with a ledger attached and returns (stdout, ledger bytes
// past the manifest line).  The manifest line is the only part of a
// scenario ledger allowed to vary across hosts — it records GOMAXPROCS
// and wall-clock start time.
func runScenarioCorpus(t *testing.T, procs int) (string, []byte) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "scenarios", "-scenario-dir", testCorpusDir,
		"-obs", path}, &out, &errb); code != 0 {
		t.Fatalf("corpus run (GOMAXPROCS=%d) exit %d, stderr: %s", procs, code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		t.Fatalf("ledger %s has no manifest line", path)
	}
	return out.String(), data[i+1:]
}

// TestScenarioCorpusReproducible: every committed scenario, both
// pricing modes, GOMAXPROCS 1 vs 8 — the rendered league table and the
// ledger past its manifest line must be byte-identical.  This is the
// property that makes the committed goldens sound regression baselines.
//
// Race instrumentation multiplies the corpus runtime ~10x, so under
// -race the test only runs when PLUM_RACE_CORPUS is set (the CI
// determinism job); the plain test job covers it at full speed.
func TestScenarioCorpusReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus determinism run; skipped with -short")
	}
	if raceEnabled && os.Getenv("PLUM_RACE_CORPUS") == "" {
		t.Skip("race-instrumented corpus run takes minutes; set PLUM_RACE_CORPUS=1 to opt in")
	}
	outSerial, ledgerSerial := runScenarioCorpus(t, 1)
	outParallel, ledgerParallel := runScenarioCorpus(t, 8)
	if outSerial != outParallel {
		t.Errorf("league-table stdout differs between GOMAXPROCS 1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s",
			outSerial, outParallel)
	}
	if !bytes.Equal(ledgerSerial, ledgerParallel) {
		t.Error("ledger bytes past the manifest differ between GOMAXPROCS 1 and 8")
	}
	if !strings.Contains(outSerial, "Scenario league") {
		t.Errorf("corpus stdout lacks the league table:\n%s", outSerial)
	}
}
