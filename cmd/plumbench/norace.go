//go:build !race

package main

// raceEnabled reports whether this binary was built with the race
// detector.  See race.go.
const raceEnabled = false
