//go:build race

package main

// raceEnabled reports whether this binary was built with the race
// detector.  The full-corpus determinism test keys off it: race
// instrumentation multiplies the corpus runtime by roughly an order of
// magnitude, so the race-instrumented variant only runs when the CI
// determinism job opts in via PLUM_RACE_CORPUS.
const raceEnabled = true
