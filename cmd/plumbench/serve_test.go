package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"plum/internal/event"
	"plum/internal/msg"
	"plum/internal/obs"
)

// TestServeConcurrentScrape hammers every read endpoint from several
// goroutines while simulation worlds run and flush registry counters —
// the exact overlap a live CI scrape produces.  CI's race step runs
// this under -race; the assertion is freedom from data races plus
// well-formed responses throughout.
func TestServeConcurrentScrape(t *testing.T) {
	dir := t.TempDir()

	// A real ledger for /runs ...
	ledgerPath := filepath.Join(dir, "run.jsonl")
	l, err := obs.Create(ledgerPath, obs.Manifest{Tool: "serve_test"})
	if err != nil {
		t.Fatal(err)
	}
	l.Add(obs.EpochRecord{Kind: "epoch", Exp: "test", P: 2})
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}
	// ... and a real span stream for /spans.
	spansPath := filepath.Join(dir, "spans.jsonl")
	sf, err := os.Create(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	sl := event.NewSpanLog(2, event.SpanOptions{
		Sink:  sf,
		Label: map[string]string{"exp": "serve_test"},
	})
	sl.Begin(0, event.PhaseSolve, 0)
	sl.End(0, 1)
	sl.CutEpoch(nil, nil)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}

	// Seed the registry so the first /metrics scrape already sees the
	// message counters the concurrent worlds keep bumping.
	worldBurst := func() {
		msg.RunModel(4, msg.SP2Model(), func(c *msg.Comm) {
			c.Compute(10)
			c.AllreduceInt64(int64(c.Rank()), msg.SumInt64)
		})
	}
	worldBurst()

	s, err := startServe("127.0.0.1:0", ledgerPath, spansPath)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.addr

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	scrape := func(path, want string) {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(base + path)
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
				return
			}
			if !strings.Contains(string(body), want) {
				errs <- fmt.Errorf("%s: response lacks %q: %s", path, want, body)
				return
			}
		}
	}
	wg.Add(5)
	go scrape("/metrics", "plum_msg_messages_total")
	go scrape("/runs", "run.jsonl")
	go scrape("/spans", "serve_test")
	go scrape("/healthz", "running")
	// Self-diff via the endpoint: the served ledger vs itself must
	// report exact zero deltas.
	go scrape("/diff?base=run.jsonl", "no differences")

	// Meanwhile, worlds run and flush their counters into the registry
	// the /metrics goroutine is reading.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			worldBurst()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s.done.Store(true)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "done") {
		t.Errorf("healthz after done = %s", body)
	}
}

// TestServeDiffEndpoint exercises /diff beyond the happy path: formats,
// the directory confinement, and the missing-base error.
func TestServeDiffEndpoint(t *testing.T) {
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "cur.jsonl")
	l, err := obs.Create(ledgerPath, obs.Manifest{Tool: "serve_test", ConfigDigest: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	l.Add(obs.EpochRecord{Kind: "epoch", Exp: "test", P: 2, SolveSeconds: 2.0})
	if err := l.Close(nil, ""); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.jsonl")
	b, err := obs.Create(basePath, obs.Manifest{Tool: "serve_test", ConfigDigest: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	b.Add(obs.EpochRecord{Kind: "epoch", Exp: "test", P: 2, SolveSeconds: 1.0})
	if err := b.Close(nil, ""); err != nil {
		t.Fatal(err)
	}

	s, err := startServe("127.0.0.1:0", ledgerPath, "")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + s.addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/diff?base=base.jsonl"); code != http.StatusOK ||
		!strings.Contains(body, "+1.000000") {
		t.Errorf("text diff: status %d, body %s", code, body)
	}
	if code, body := get("/diff?base=base.jsonl&format=json"); code != http.StatusOK ||
		!strings.Contains(body, `"d_time": 1`) {
		t.Errorf("json diff: status %d, body %s", code, body)
	}
	if code, body := get("/diff?base=base.jsonl&format=md"); code != http.StatusOK ||
		!strings.Contains(body, "### Differential run analysis") {
		t.Errorf("md diff: status %d, body %s", code, body)
	}
	if code, _ := get("/diff?base=../escape.jsonl"); code != http.StatusBadRequest {
		t.Errorf("path escape: status %d, want 400", code)
	}
	if code, _ := get("/diff?base=nope.jsonl"); code != http.StatusServiceUnavailable {
		t.Errorf("missing base: status %d, want 503", code)
	}
	if code, _ := get("/diff"); code != http.StatusBadRequest {
		t.Errorf("no base: status %d, want 400", code)
	}
}
