package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"plum/internal/obs"
)

// Run-manifest assembly: everything that names a plumbench run.  The
// config digest hashes the knobs that change simulated output, so two
// ledgers are comparable exactly when their digests match; the host
// fields (git, Go version, CPU count) describe the producing machine
// without influencing any epoch record.

// gitRevision returns the VCS revision of the producing build: the
// revision stamped into the binary by the Go toolchain when built
// inside a checkout, else the checkout's HEAD when running from source
// (go run), else "unknown".
func gitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if rev := strings.TrimSpace(string(out)); err == nil && rev != "" {
		return rev
	}
	return "unknown"
}

// configDigest hashes the run configuration that determines simulated
// output.  Host parallelism is deliberately excluded: runs with equal
// digests must produce byte-identical epoch records regardless of
// GOMAXPROCS.  The scenario selection extends the canon only when
// present, so every pre-scenario digest (and with it the committed
// baseline ledgers) stays valid.
func configDigest(paper bool, exp, model string, measured bool, elems int, ps []int, scen []string) string {
	canon := fmt.Sprintf("v%d|paper=%v|exp=%s|model=%s|measured=%v|elems=%d|ps=%v",
		obs.SchemaVersion, paper, exp, model, measured, elems, ps)
	if len(scen) > 0 {
		canon += fmt.Sprintf("|scenarios=%v", scen)
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:8])
}

// buildManifest fills the ledger's first record.
func buildManifest(paper bool, exp, model string, measured bool, elems int, ps []int, scen []string) obs.Manifest {
	return obs.Manifest{
		Tool:         "plumbench",
		ConfigDigest: configDigest(paper, exp, model, measured, elems, ps, scen),
		Git:          gitRevision(),
		GoVersion:    runtime.Version(),
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Start:        time.Now().UTC().Format(time.RFC3339),
	}
}
