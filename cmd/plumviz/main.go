// Command plumviz produces a legacy-VTK visualization of an adapted,
// load-balanced mesh: it runs the framework's initialization + one
// adaption cycle on the synthetic rotor-stand-in problem, finalizes the
// distributed mesh into a single global grid (paper Section 3's
// finalization phase), and writes it with the solution and ownership
// painted on.
//
// Usage: plumviz [-p procs] [-frac f] [-o out.vtk]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

func main() {
	p := flag.Int("p", 8, "simulated processors")
	frac := flag.Float64("frac", 0.2, "fraction of edges to refine")
	out := flag.String("o", "plum.vtk", "output VTK file")
	flag.Parse()

	global := mesh.Box(16, 12, 8, 4.0, 3.0, 2.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, *p, partition.Default())
	ind := adapt.ShockCylinderIndicator(mesh.Vec3{2.0, 1.5, 0}, mesh.Vec3{0, 0, 1}, 0.9, 0.4)
	cfg := core.DefaultConfig()

	var failed error
	msg.RunModel(*p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		ps := solver.NewParallel(d)
		ps.InitParallel(solver.GaussianPulse(mesh.Vec3{2, 1.5, 1}, 0.6))
		gv := g.WithWeights(g.WComp, g.WRemap)
		st := core.AdaptionStep(c, d, gv, ind, *frac, cfg)
		ps.Rebuild()
		for it := 0; it < 5; it++ {
			ps.Step(0.002)
		}
		gm := d.Finalize()
		if c.Rank() != 0 {
			return
		}
		fmt.Printf("adapted to %d elements across %d processors (remap accepted: %v)\n",
			st.Counts.Elems, *p, st.Accepted)
		f, err := os.Create(*out)
		if err != nil {
			failed = err
			return
		}
		defer f.Close()
		if err := gm.WriteVTK(f, 0); err != nil {
			failed = err
			return
		}
		fmt.Printf("wrote %s (density component as point data, root element as cell data)\n", *out)
	})
	if failed != nil {
		log.Fatal(failed)
	}
}
