// Command plumviz produces a legacy-VTK visualization of an adapted,
// load-balanced mesh: it runs the framework's initialization + one
// adaption cycle on the synthetic rotor-stand-in problem, finalizes the
// distributed mesh into a single global grid (paper Section 3's
// finalization phase), and writes it with the solution and ownership
// painted on.  With -trace the same run's simulated event timeline —
// every compute span, message injection, and receive wait of every rank
// — is exported as Chrome-tracing JSON (chrome://tracing,
// ui.perfetto.dev), the visual counterpart of the VTK mesh: the mesh
// shows where the work lives, the trace shows when each rank did it.
// Alongside the export, -trace prints the per-rank cost profile table
// (internal/profile): compute, messaging overhead, and comm-wait
// seconds decomposed by protocol (halo / collective / migration /
// other), plus each rank's critical-path share, and a summary of the
// event engine's host-plane counters (events, fast-path yield share,
// calendar high-water).
//
// With -ledger the command does not simulate at all: it reads a run
// ledger written by plumbench -obs and renders it back into the
// paper-style per-epoch league table — decision, prices, moved weight,
// edge cut, and critical-path decomposition per adaption epoch.
//
// Usage: plumviz [-p procs] [-frac f] [-o out.vtk] [-trace out.json]
//
//	plumviz -ledger run.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/event"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/obs"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/profile"
	"plum/internal/report"
	"plum/internal/solver"
)

func main() {
	p := flag.Int("p", 8, "simulated processors")
	frac := flag.Float64("frac", 0.2, "fraction of edges to refine")
	out := flag.String("o", "plum.vtk", "output VTK file")
	tracePath := flag.String("trace", "", "also write the run's event timeline as Chrome-tracing JSON")
	ledgerPath := flag.String("ledger", "", "render a plumbench -obs run ledger as a per-epoch"+
		" league table instead of running a simulation")
	flag.Parse()

	if *ledgerPath != "" {
		if err := renderLedger(os.Stdout, *ledgerPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	global := mesh.Box(16, 12, 8, 4.0, 3.0, 2.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, *p, partition.Default())
	ind := adapt.ShockCylinderIndicator(mesh.Vec3{2.0, 1.5, 0}, mesh.Vec3{0, 0, 1}, 0.9, 0.4)
	cfg := core.DefaultConfig()

	// Event recording costs memory proportional to the run; only pay it
	// when the timeline was actually requested.
	run := func(fn func(*msg.Comm)) ([]float64, *event.Trace) {
		if *tracePath == "" {
			return msg.RunModel(*p, msg.SP2Model(), fn), nil
		}
		return msg.RunTraced(*p, msg.SP2Model(), fn)
	}

	var failed error
	times, trace := run(func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		ps := solver.NewParallel(d)
		ps.InitParallel(solver.GaussianPulse(mesh.Vec3{2, 1.5, 1}, 0.6))
		gv := g.WithWeights(g.WComp, g.WRemap)
		st := core.AdaptionStep(c, d, gv, ind, *frac, cfg)
		ps.Rebuild()
		for it := 0; it < 5; it++ {
			ps.Step(0.002)
		}
		gm := d.Finalize()
		if c.Rank() != 0 {
			return
		}
		fmt.Printf("adapted to %d elements across %d processors (remap accepted: %v)\n",
			st.Counts.Elems, *p, st.Accepted)
		f, err := os.Create(*out)
		if err != nil {
			failed = err
			return
		}
		defer f.Close()
		if err := gm.WriteVTK(f, 0); err != nil {
			failed = err
			return
		}
		fmt.Printf("wrote %s (density component as point data, root element as cell data)\n", *out)
	})
	if failed != nil {
		log.Fatal(failed)
	}
	if *tracePath != "" {
		if err := trace.WriteChromeFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		cp := event.CriticalPath(trace)
		fmt.Printf("wrote %s (%d events, makespan %.4fs: %.4fs compute, %.4fs overhead, %.4fs comm wait on the critical path)\n",
			*tracePath, len(trace.Records), msg.MaxTime(times), cp.Compute, cp.Overhead, cp.CommWait)

		// The numeric counterpart of the timeline: each rank's cost
		// decomposition — the same aggregation the measured-cost feedback
		// loop prices rebalancing decisions with (internal/profile).
		prof := profile.FromTrace(trace, 0, len(trace.Records), nil)
		t := report.NewTable("Per-rank cost profile (simulated seconds)",
			"Rank", "compute", "overhead", "halo wait", "coll wait",
			"mig wait", "other wait", "CP share")
		for r, rp := range prof.Ranks {
			t.AddRow(r,
				fmt.Sprintf("%.4f", rp.Compute), fmt.Sprintf("%.4f", rp.Overhead),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassHalo]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassCollective]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassMigration]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassOther]),
				fmt.Sprintf("%.1f%%", 100*prof.PathShare(r)))
		}
		t.Render(os.Stdout)
		engineSummary(os.Stdout, len(trace.Records))
	}
}

// engineSummary prints the event engine's host-plane counters for the
// run that just finished: the msg runtime flushed every world's
// scheduler stats into the obs registry, so the registry's totals are
// this process's totals.
func engineSummary(w *os.File, events int) {
	v := obs.Default.Value
	fast := v("plum_engine_yields_total", "path", "fast")
	handoff := v("plum_engine_yields_total", "path", "handoff")
	share := 0.0
	if fast+handoff > 0 {
		share = fast / (fast + handoff)
	}
	fmt.Fprintf(w, "engine: %d trace events, %.0f yields (%.1f%% fast-path),"+
		" %.0f blocks, %.0f wakes, calendar high-water %.0f\n",
		events, fast+handoff, 100*share,
		v("plum_engine_blocks_total"), v("plum_engine_wakes_total"),
		v("plum_engine_calendar_highwater"))
}

// renderLedger reads a plumbench run ledger and renders the paper-style
// per-epoch league table.
func renderLedger(w *os.File, path string) error {
	lf, err := obs.ReadLedgerFile(path)
	if err != nil {
		return err
	}
	m := lf.Manifest
	fmt.Fprintf(w, "ledger %s: %s run %s (config %s, git %s, %s %s/%s, GOMAXPROCS=%d)\n",
		path, m.Tool, m.Start, m.ConfigDigest, m.Git, m.GoVersion, m.GoOS, m.GoArch, m.GoMaxProcs)
	if len(lf.Epochs) == 0 {
		fmt.Fprintln(w, "no epoch records (only the epoch-driving experiments — implicit,"+
			" feedback — append epochs)")
		return nil
	}
	t := report.NewTable("Per-epoch league table",
		"Exp", "Model", "Run", "P", "epoch", "pricing", "decision",
		"imbal", "gain", "cost", "TotalV", "MaxV", "EdgeCut", "Elems", "Solve(s)", "CP wait")
	for _, e := range lf.Epochs {
		decision := "reject"
		switch {
		case e.Balanced:
			decision = "balanced"
		case e.Accepted:
			decision = "accept"
		}
		model := e.Model
		if model == "" {
			model = "flat"
		}
		waitShare := "-"
		if span := e.CPCompute + e.CPOverhead + e.CPWait; span > 0 {
			waitShare = fmt.Sprintf("%.1f%%", 100*e.CPWait/span)
		}
		t.AddRow(e.Exp, model, e.Run, e.P, e.Cycle, e.Pricing, decision,
			fmt.Sprintf("%.3f", e.Imbalance),
			fmt.Sprintf("%.4f", e.Gain), fmt.Sprintf("%.4f", e.Cost),
			e.TotalV, e.MaxV, e.EdgeCut, e.Elems,
			fmt.Sprintf("%.4f", e.SolveSeconds), waitShare)
	}
	t.Render(w)
	if lf.Metrics != nil {
		fmt.Fprintf(w, "host metrics: %.0f worlds, %.0f engine yields (%.0f fast-path),"+
			" %.0f msg-pool shell hits / %.0f misses\n",
			lf.Metrics["plum_worlds_finished_total"],
			lf.Metrics[`plum_engine_yields_total{path="fast"}`]+
				lf.Metrics[`plum_engine_yields_total{path="handoff"}`],
			lf.Metrics[`plum_engine_yields_total{path="fast"}`],
			lf.Metrics[`plum_msg_pool_shells_total{result="hit"}`],
			lf.Metrics[`plum_msg_pool_shells_total{result="miss"}`])
	}
	fmt.Fprintf(w, "%d epochs; output checksum %s\n", lf.End.Epochs, lf.End.OutputSHA256)
	return nil
}
