// Command plumviz produces a legacy-VTK visualization of an adapted,
// load-balanced mesh: it runs the framework's initialization + one
// adaption cycle on the synthetic rotor-stand-in problem, finalizes the
// distributed mesh into a single global grid (paper Section 3's
// finalization phase), and writes it with the solution and ownership
// painted on.  With -trace the same run's simulated event timeline —
// every compute span, message injection, and receive wait of every rank
// — is exported as Chrome-tracing JSON (chrome://tracing,
// ui.perfetto.dev), the visual counterpart of the VTK mesh: the mesh
// shows where the work lives, the trace shows when each rank did it.
// Alongside the export, -trace prints the per-rank cost profile table
// (internal/profile): compute, messaging overhead, and comm-wait
// seconds decomposed by protocol (halo / collective / migration /
// other), plus each rank's critical-path share, and a summary of the
// event engine's host-plane counters (events, fast-path yield share,
// calendar high-water).
//
// With -ledger the command does not simulate at all: it reads a run
// ledger written by plumbench -obs and renders it back into the
// paper-style per-epoch league table — decision, prices, moved weight,
// edge cut, and critical-path decomposition per adaption epoch, plus
// the wait-blame decomposition when the run recorded it.  A truncated
// ledger (a run killed mid-stream) renders the epochs flushed before
// the cut with a warning instead of failing.
//
// With -blame the command renders a span file written by plumbench
// -spans: the per-epoch wait-blame tables (who the critical path
// waited on — lagging sender compute by rank and phase, contended
// links, wire latency), the aggregated sender-lag league across
// epochs, and the span census by phase.
//
// Usage: plumviz [-p procs] [-frac f] [-o out.vtk] [-trace out.json]
//
//	plumviz -ledger run.jsonl
//	plumviz -blame spans.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/event"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/obs"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/profile"
	"plum/internal/report"
	"plum/internal/solver"
)

func main() {
	p := flag.Int("p", 8, "simulated processors")
	frac := flag.Float64("frac", 0.2, "fraction of edges to refine")
	out := flag.String("o", "plum.vtk", "output VTK file")
	tracePath := flag.String("trace", "", "also write the run's event timeline as Chrome-tracing JSON")
	ledgerPath := flag.String("ledger", "", "render a plumbench -obs run ledger as a per-epoch"+
		" league table instead of running a simulation")
	blamePath := flag.String("blame", "", "render a plumbench -spans span file: per-epoch"+
		" wait-blame tables, the aggregated sender-lag league, and the span census")
	flag.Parse()

	if *ledgerPath != "" {
		if err := renderLedger(os.Stdout, *ledgerPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *blamePath != "" {
		if err := renderBlame(os.Stdout, *blamePath); err != nil {
			log.Fatal(err)
		}
		return
	}

	global := mesh.Box(16, 12, 8, 4.0, 3.0, 2.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, *p, partition.Default())
	ind := adapt.ShockCylinderIndicator(mesh.Vec3{2.0, 1.5, 0}, mesh.Vec3{0, 0, 1}, 0.9, 0.4)
	cfg := core.DefaultConfig()

	// Event recording costs memory proportional to the run; only pay it
	// when the timeline was actually requested.  The traced run also
	// collects the phase spans in memory (nil sink), so the Chrome
	// export can nest each rank's records under its phases.
	run := func(fn func(*msg.Comm)) ([]float64, *event.Trace, *event.SpanLog) {
		if *tracePath == "" {
			return msg.RunModel(*p, msg.SP2Model(), fn), nil, nil
		}
		return msg.RunTracedSpans(*p, msg.SP2Model(), event.SpanOptions{}, fn)
	}

	var failed error
	times, trace, spans := run(func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		ps := solver.NewParallel(d)
		ps.InitParallel(solver.GaussianPulse(mesh.Vec3{2, 1.5, 1}, 0.6))
		gv := g.WithWeights(g.WComp, g.WRemap)
		st := core.AdaptionStep(c, d, gv, ind, *frac, cfg)
		ps.Rebuild()
		for it := 0; it < 5; it++ {
			ps.Step(0.002)
		}
		gm := d.Finalize()
		if c.Rank() != 0 {
			return
		}
		fmt.Printf("adapted to %d elements across %d processors (remap accepted: %v)\n",
			st.Counts.Elems, *p, st.Accepted)
		f, err := os.Create(*out)
		if err != nil {
			failed = err
			return
		}
		defer f.Close()
		if err := gm.WriteVTK(f, 0); err != nil {
			failed = err
			return
		}
		fmt.Printf("wrote %s (density component as point data, root element as cell data)\n", *out)
	})
	if failed != nil {
		log.Fatal(failed)
	}
	if *tracePath != "" {
		all := spans.All()
		if err := trace.WriteChromeFileSpans(*tracePath, all); err != nil {
			log.Fatal(err)
		}
		cp := event.CriticalPath(trace)
		fmt.Printf("wrote %s (%d events, %d phase spans, makespan %.4fs: %.4fs compute, %.4fs overhead, %.4fs comm wait on the critical path)\n",
			*tracePath, len(trace.Records), len(all), msg.MaxTime(times),
			cp.Compute, cp.Overhead, cp.CommWait)

		// The numeric counterpart of the timeline: each rank's cost
		// decomposition — the same aggregation the measured-cost feedback
		// loop prices rebalancing decisions with (internal/profile).
		prof := profile.FromTrace(trace, 0, len(trace.Records), nil)
		t := report.NewTable("Per-rank cost profile (simulated seconds)",
			"Rank", "compute", "overhead", "halo wait", "coll wait",
			"mig wait", "other wait", "top phase", "CP share")
		for r, rp := range prof.Ranks {
			ph, sec := rp.TopPhase()
			top := "-"
			if sec > 0 {
				top = fmt.Sprintf("%s %.4f", ph, sec)
			}
			t.AddRow(r,
				fmt.Sprintf("%.4f", rp.Compute), fmt.Sprintf("%.4f", rp.Overhead),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassHalo]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassCollective]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassMigration]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassOther]),
				top,
				fmt.Sprintf("%.1f%%", 100*prof.PathShare(r)))
		}
		t.Render(os.Stdout)

		// Who the critical path waited on, transitively attributed.
		renderBlameReport(os.Stdout, event.WaitBlame(trace, &cp))
		engineSummary(os.Stdout, len(trace.Records))
	}
}

// renderBlameReport prints one BlameReport as the standard culprit
// decomposition plus its top lag cells and edges.
func renderBlameReport(w *os.File, b *event.BlameReport) {
	fmt.Fprintf(w, "Wait-blame: %.4fs attributed — %.4fs sender compute, %.4fs sender overhead,"+
		" %.4fs contention, %.4fs wire, %.4fs idle\n",
		b.Wait,
		b.ByKind[event.BlameSenderCompute], b.ByKind[event.BlameSenderOverhead],
		b.ByKind[event.BlameContention], b.ByKind[event.BlameWire],
		b.ByKind[event.BlameIdle])
	if lags := b.TopLag(5); len(lags) > 0 {
		t := report.NewTable("Top lagging senders (rank x phase, simulated seconds)",
			"Rank", "Phase", "lag(s)")
		for _, l := range lags {
			t.AddRow(l.Rank, l.Phase, fmt.Sprintf("%.4f", l.Seconds))
		}
		t.Render(w)
	}
	if edges := b.TopEdges(5); len(edges) > 0 {
		t := report.NewTable("Top delaying edges (post-send queue + wire, simulated seconds)",
			"Edge", "queue(s)", "wire(s)", "msgs")
		for _, e := range edges {
			t.AddRow(fmt.Sprintf("%d->%d", e.Src, e.Dst),
				fmt.Sprintf("%.4f", e.Queue), fmt.Sprintf("%.4f", e.Wire), e.Count)
		}
		t.Render(w)
	}
}

// engineSummary prints the event engine's host-plane counters for the
// run that just finished: the msg runtime flushed every world's
// scheduler stats into the obs registry, so the registry's totals are
// this process's totals.
func engineSummary(w *os.File, events int) {
	v := obs.Default.Value
	fast := v("plum_engine_yields_total", "path", "fast")
	handoff := v("plum_engine_yields_total", "path", "handoff")
	share := 0.0
	if fast+handoff > 0 {
		share = fast / (fast + handoff)
	}
	fmt.Fprintf(w, "engine: %d trace events, %.0f yields (%.1f%% fast-path),"+
		" %.0f blocks, %.0f wakes, calendar high-water %.0f\n",
		events, fast+handoff, 100*share,
		v("plum_engine_blocks_total"), v("plum_engine_wakes_total"),
		v("plum_engine_calendar_highwater"))
}

// renderLedger reads a plumbench run ledger and renders the paper-style
// per-epoch league table.  A truncated ledger — the producing run was
// killed before the end record, or is still streaming — renders what
// was flushed, with a warning, instead of failing: the partial table is
// exactly what a post-mortem needs.
func renderLedger(w *os.File, path string) error {
	lf, truncated, err := obs.ReadLedgerFileLenient(path)
	if err != nil {
		return err
	}
	if truncated {
		fmt.Fprintf(w, "warning: ledger %s is truncated (no end record — run killed or still"+
			" streaming); rendering the %d epochs flushed before the cut\n",
			path, len(lf.Epochs))
	}
	m := lf.Manifest
	fmt.Fprintf(w, "ledger %s: %s run %s (config %s, git %s, %s %s/%s, GOMAXPROCS=%d)\n",
		path, m.Tool, m.Start, m.ConfigDigest, m.Git, m.GoVersion, m.GoOS, m.GoArch, m.GoMaxProcs)
	if len(lf.Epochs) == 0 {
		fmt.Fprintln(w, "no epoch records (only the epoch-driving experiments — implicit,"+
			" feedback — append epochs)")
		return nil
	}
	t := report.NewTable("Per-epoch league table",
		"Exp", "Model", "Run", "P", "epoch", "pricing", "decision",
		"imbal", "gain", "cost", "TotalV", "MaxV", "EdgeCut", "Elems", "Solve(s)", "CP wait")
	for _, e := range lf.Epochs {
		decision := "reject"
		switch {
		case e.Balanced:
			decision = "balanced"
		case e.Accepted:
			decision = "accept"
		}
		model := e.Model
		if model == "" {
			model = "flat"
		}
		waitShare := "-"
		if span := e.CPCompute + e.CPOverhead + e.CPWait; span > 0 {
			waitShare = fmt.Sprintf("%.1f%%", 100*e.CPWait/span)
		}
		t.AddRow(e.Exp, model, e.Run, e.P, e.Cycle, e.Pricing, decision,
			fmt.Sprintf("%.3f", e.Imbalance),
			fmt.Sprintf("%.4f", e.Gain), fmt.Sprintf("%.4f", e.Cost),
			e.TotalV, e.MaxV, e.EdgeCut, e.Elems,
			fmt.Sprintf("%.4f", e.SolveSeconds), waitShare)
	}
	t.Render(w)
	renderScenarioSummary(w, lf.Epochs)
	renderLedgerBlame(w, lf.Epochs)
	if lf.Metrics != nil {
		fmt.Fprintf(w, "host metrics: %.0f worlds, %.0f engine yields (%.0f fast-path),"+
			" %.0f msg-pool shell hits / %.0f misses\n",
			lf.Metrics["plum_worlds_finished_total"],
			lf.Metrics[`plum_engine_yields_total{path="fast"}`]+
				lf.Metrics[`plum_engine_yields_total{path="handoff"}`],
			lf.Metrics[`plum_engine_yields_total{path="fast"}`],
			lf.Metrics[`plum_msg_pool_shells_total{result="hit"}`],
			lf.Metrics[`plum_msg_pool_shells_total{result="miss"}`])
	}
	if truncated {
		fmt.Fprintf(w, "%d epochs (partial); no end record, no output checksum\n", len(lf.Epochs))
	} else {
		fmt.Fprintf(w, "%d epochs; output checksum %s\n", lf.End.Epochs, lf.End.OutputSHA256)
	}
	return nil
}

// renderScenarioSummary condenses scenario-corpus epochs (exp key
// "scenario/<name>", plumbench -exp scenarios -obs) into one row per
// scenario and pricing mode: the epoch decision string, the decision
// divergence between the two modes, the summed solve time, and where
// the run's critical-path waits were blamed.  Ledgers without scenario
// epochs print nothing.
func renderScenarioSummary(w *os.File, epochs []obs.EpochRecord) {
	type key struct{ scen, run string }
	type agg struct {
		decisions string
		solve     float64
		wait      float64
		blame     map[string]float64
	}
	rows := map[key]*agg{}
	var names []string
	for _, e := range epochs {
		scen, ok := strings.CutPrefix(e.Exp, "scenario/")
		if !ok {
			continue
		}
		k := key{scen, e.Run}
		a := rows[k]
		if a == nil {
			a = &agg{blame: map[string]float64{}}
			rows[k] = a
			if e.Run == "analytic" {
				names = append(names, scen)
			}
		}
		switch {
		case e.Balanced:
			a.decisions += "B"
		case e.Accepted:
			a.decisions += "A"
		default:
			a.decisions += "R"
		}
		a.solve += e.SolveSeconds
		if b := e.Blame; b != nil {
			a.wait += b.Wait
			a.blame["sender comp"] += b.SenderCompute
			a.blame["sender ovhd"] += b.SenderOverhead
			a.blame["contention"] += b.Contention
			a.blame["wire"] += b.Wire
			a.blame["idle"] += b.Idle
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Strings(names)
	diff := func(a, b string) int {
		n := 0
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				n++
			}
		}
		return n
	}
	topBlame := func(a *agg) string {
		top, sec := "-", 0.0
		for k, s := range a.blame {
			if s > sec || (s == sec && k < top) {
				top, sec = k, s
			}
		}
		if sec <= 0 {
			return "-"
		}
		return fmt.Sprintf("%s %.4f", top, sec)
	}
	t := report.NewTable("Scenario summary (one row per scenario and pricing mode)",
		"Scenario", "Run", "decisions", "diff", "Solve(s)", "CP wait(s)", "top blame")
	for _, scen := range names {
		an, me := rows[key{scen, "analytic"}], rows[key{scen, "measured"}]
		d := "-"
		if an != nil && me != nil {
			d = fmt.Sprintf("%d", diff(an.decisions, me.decisions))
		}
		for _, run := range []string{"analytic", "measured"} {
			a := rows[key{scen, run}]
			if a == nil {
				continue
			}
			t.AddRow(scen, run, a.decisions, d,
				fmt.Sprintf("%.4f", a.solve), fmt.Sprintf("%.4f", a.wait), topBlame(a))
		}
	}
	t.Render(w)
}

// renderLedgerBlame prints the per-epoch wait-blame decomposition for
// ledgers whose runs recorded it (plumbench -obs on a traced run).
func renderLedgerBlame(w *os.File, epochs []obs.EpochRecord) {
	any := false
	for _, e := range epochs {
		if e.Blame != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	t := report.NewTable("Wait-blame by epoch (simulated seconds)",
		"Exp", "Model", "Run", "P", "epoch", "wait", "sender comp", "sender ovhd",
		"contention", "wire", "idle", "top lag")
	for _, e := range epochs {
		b := e.Blame
		if b == nil {
			continue
		}
		topLag := "-"
		if b.TopRank >= 0 {
			topLag = fmt.Sprintf("r%d/%s %.4f", b.TopRank, b.TopPhase, b.TopLag)
		}
		model := e.Model
		if model == "" {
			model = "flat"
		}
		t.AddRow(e.Exp, model, e.Run, e.P, e.Cycle,
			fmt.Sprintf("%.4f", b.Wait),
			fmt.Sprintf("%.4f", b.SenderCompute), fmt.Sprintf("%.4f", b.SenderOverhead),
			fmt.Sprintf("%.4f", b.Contention), fmt.Sprintf("%.4f", b.Wire),
			fmt.Sprintf("%.4f", b.Idle), topLag)
	}
	t.Render(w)
}

// renderBlame reads a plumbench -spans span file and renders, per world
// stream: the per-epoch wait-blame table, the sender-lag league
// aggregated across epochs, the most-delaying causality edges, and the
// span census by phase.
func renderBlame(w *os.File, path string) error {
	worlds, err := event.ReadSpansFile(path)
	if err != nil {
		return err
	}
	for wi, sw := range worlds {
		fmt.Fprintf(w, "world %d: %s — P=%d, ring=%d, sample=%d, %d spans, %d epochs",
			wi, labelString(sw.Label), sw.P, sw.Ring, sw.Sample, len(sw.Spans), len(sw.Blame))
		if !sw.Complete {
			fmt.Fprint(w, " (stream truncated — run killed or still streaming)")
		}
		fmt.Fprintln(w)

		t := report.NewTable("Wait-blame by epoch (simulated seconds)",
			"epoch", "wait", "sender comp", "sender ovhd", "contention", "wire", "idle",
			"top lag", "top edge")
		for _, eb := range sw.Blame {
			topLag, topEdge := "-", "-"
			if len(eb.Lag) > 0 {
				l := eb.Lag[0]
				topLag = fmt.Sprintf("r%d/%s %.4f", l.Rank, l.Phase, l.Seconds)
			}
			if len(eb.Edges) > 0 {
				e := eb.Edges[0]
				topEdge = fmt.Sprintf("%d->%d %.4f", e.Src, e.Dst, e.Queue+e.Wire)
			}
			t.AddRow(eb.Epoch,
				fmt.Sprintf("%.4f", eb.Wait),
				fmt.Sprintf("%.4f", eb.SenderCompute), fmt.Sprintf("%.4f", eb.SenderOverhead),
				fmt.Sprintf("%.4f", eb.Contention), fmt.Sprintf("%.4f", eb.Wire),
				fmt.Sprintf("%.4f", eb.Idle), topLag, topEdge)
		}
		t.Render(w)

		renderLagLeague(w, sw)
		renderSpanCensus(w, sw)
	}
	return nil
}

// renderLagLeague aggregates the per-epoch top-lag cells and edges of
// one world stream across its epochs.  Because the stream serializes
// only each epoch's top-k cells (the rest folds into lag_other), the
// league is a lower bound per cell; the "other" row restores the total.
func renderLagLeague(w *os.File, sw event.SpanWorld) {
	type cell struct {
		rank int
		ph   string
	}
	lag := map[cell]float64{}
	var other float64
	edges := map[[2]int]*event.EdgeBlame{}
	for _, eb := range sw.Blame {
		for _, l := range eb.Lag {
			lag[cell{l.Rank, l.Phase}] += l.Seconds
		}
		other += eb.LagOther
		for _, e := range eb.Edges {
			key := [2]int{e.Src, e.Dst}
			agg := edges[key]
			if agg == nil {
				agg = &event.EdgeBlame{Src: e.Src, Dst: e.Dst}
				edges[key] = agg
			}
			agg.Queue += e.Queue
			agg.Wire += e.Wire
			agg.Count += e.Count
		}
	}
	if len(lag) > 0 || other > 0 {
		var cells []event.LagEntry
		for c, s := range lag {
			cells = append(cells, event.LagEntry{Rank: c.rank, Phase: c.ph, Seconds: s})
		}
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].Seconds != cells[j].Seconds {
				return cells[i].Seconds > cells[j].Seconds
			}
			if cells[i].Rank != cells[j].Rank {
				return cells[i].Rank < cells[j].Rank
			}
			return cells[i].Phase < cells[j].Phase
		})
		if len(cells) > 10 {
			cells = cells[:10]
		}
		t := report.NewTable("Sender-lag league, all epochs (simulated seconds)",
			"Rank", "Phase", "lag(s)")
		for _, c := range cells {
			t.AddRow(c.Rank, c.Phase, fmt.Sprintf("%.4f", c.Seconds))
		}
		if other > 0 {
			t.AddRow("-", "other", fmt.Sprintf("%.4f", other))
		}
		t.Render(w)
	}
	if len(edges) > 0 {
		var all []event.EdgeBlame
		for _, e := range edges {
			all = append(all, *e)
		}
		sort.Slice(all, func(i, j int) bool {
			ti, tj := all[i].Queue+all[i].Wire, all[j].Queue+all[j].Wire
			if ti != tj {
				return ti > tj
			}
			if all[i].Src != all[j].Src {
				return all[i].Src < all[j].Src
			}
			return all[i].Dst < all[j].Dst
		})
		if len(all) > 10 {
			all = all[:10]
		}
		t := report.NewTable("Top delaying edges, all epochs (queue + wire, simulated seconds)",
			"Edge", "queue(s)", "wire(s)", "msgs")
		for _, e := range all {
			t.AddRow(fmt.Sprintf("%d->%d", e.Src, e.Dst),
				fmt.Sprintf("%.4f", e.Queue), fmt.Sprintf("%.4f", e.Wire), e.Count)
		}
		t.Render(w)
	}
}

// renderSpanCensus tabulates the stream's spans by phase.  Nested spans
// overlap their parents, so the seconds column sums span-local time,
// not a partition of the makespan.
func renderSpanCensus(w *os.File, sw event.SpanWorld) {
	if len(sw.Spans) == 0 {
		return
	}
	var count [event.NumPhases]int
	var secs [event.NumPhases]float64
	for _, sp := range sw.Spans {
		count[sp.Phase]++
		secs[sp.Phase] += sp.T1 - sp.T0
	}
	t := report.NewTable("Span census by phase", "Phase", "spans", "seconds")
	for ph := event.Phase(0); ph < event.NumPhases; ph++ {
		if count[ph] == 0 {
			continue
		}
		t.AddRow(ph.String(), count[ph], fmt.Sprintf("%.4f", secs[ph]))
	}
	t.Render(w)
}

// labelString renders a stream-header label map in sorted-key order.
func labelString(label map[string]string) string {
	if len(label) == 0 {
		return "(unlabeled)"
	}
	keys := make([]string, 0, len(label))
	for k := range label {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + label[k]
	}
	return strings.Join(parts, " ")
}
