// Command plumviz produces a legacy-VTK visualization of an adapted,
// load-balanced mesh: it runs the framework's initialization + one
// adaption cycle on the synthetic rotor-stand-in problem, finalizes the
// distributed mesh into a single global grid (paper Section 3's
// finalization phase), and writes it with the solution and ownership
// painted on.  With -trace the same run's simulated event timeline —
// every compute span, message injection, and receive wait of every rank
// — is exported as Chrome-tracing JSON (chrome://tracing,
// ui.perfetto.dev), the visual counterpart of the VTK mesh: the mesh
// shows where the work lives, the trace shows when each rank did it.
// Alongside the export, -trace prints the per-rank cost profile table
// (internal/profile): compute, messaging overhead, and comm-wait
// seconds decomposed by protocol (halo / collective / migration /
// other), plus each rank's critical-path share.
//
// Usage: plumviz [-p procs] [-frac f] [-o out.vtk] [-trace out.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/event"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/profile"
	"plum/internal/report"
	"plum/internal/solver"
)

func main() {
	p := flag.Int("p", 8, "simulated processors")
	frac := flag.Float64("frac", 0.2, "fraction of edges to refine")
	out := flag.String("o", "plum.vtk", "output VTK file")
	tracePath := flag.String("trace", "", "also write the run's event timeline as Chrome-tracing JSON")
	flag.Parse()

	global := mesh.Box(16, 12, 8, 4.0, 3.0, 2.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, *p, partition.Default())
	ind := adapt.ShockCylinderIndicator(mesh.Vec3{2.0, 1.5, 0}, mesh.Vec3{0, 0, 1}, 0.9, 0.4)
	cfg := core.DefaultConfig()

	// Event recording costs memory proportional to the run; only pay it
	// when the timeline was actually requested.
	run := func(fn func(*msg.Comm)) ([]float64, *event.Trace) {
		if *tracePath == "" {
			return msg.RunModel(*p, msg.SP2Model(), fn), nil
		}
		return msg.RunTraced(*p, msg.SP2Model(), fn)
	}

	var failed error
	times, trace := run(func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		ps := solver.NewParallel(d)
		ps.InitParallel(solver.GaussianPulse(mesh.Vec3{2, 1.5, 1}, 0.6))
		gv := g.WithWeights(g.WComp, g.WRemap)
		st := core.AdaptionStep(c, d, gv, ind, *frac, cfg)
		ps.Rebuild()
		for it := 0; it < 5; it++ {
			ps.Step(0.002)
		}
		gm := d.Finalize()
		if c.Rank() != 0 {
			return
		}
		fmt.Printf("adapted to %d elements across %d processors (remap accepted: %v)\n",
			st.Counts.Elems, *p, st.Accepted)
		f, err := os.Create(*out)
		if err != nil {
			failed = err
			return
		}
		defer f.Close()
		if err := gm.WriteVTK(f, 0); err != nil {
			failed = err
			return
		}
		fmt.Printf("wrote %s (density component as point data, root element as cell data)\n", *out)
	})
	if failed != nil {
		log.Fatal(failed)
	}
	if *tracePath != "" {
		if err := trace.WriteChromeFile(*tracePath); err != nil {
			log.Fatal(err)
		}
		cp := event.CriticalPath(trace)
		fmt.Printf("wrote %s (%d events, makespan %.4fs: %.4fs compute, %.4fs overhead, %.4fs comm wait on the critical path)\n",
			*tracePath, len(trace.Records), msg.MaxTime(times), cp.Compute, cp.Overhead, cp.CommWait)

		// The numeric counterpart of the timeline: each rank's cost
		// decomposition — the same aggregation the measured-cost feedback
		// loop prices rebalancing decisions with (internal/profile).
		prof := profile.FromTrace(trace, 0, len(trace.Records), nil)
		t := report.NewTable("Per-rank cost profile (simulated seconds)",
			"Rank", "compute", "overhead", "halo wait", "coll wait",
			"mig wait", "other wait", "CP share")
		for r, rp := range prof.Ranks {
			t.AddRow(r,
				fmt.Sprintf("%.4f", rp.Compute), fmt.Sprintf("%.4f", rp.Overhead),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassHalo]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassCollective]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassMigration]),
				fmt.Sprintf("%.4f", rp.Wait[profile.ClassOther]),
				fmt.Sprintf("%.1f%%", 100*prof.PathShare(r)))
		}
		t.Render(os.Stdout)
	}
}
