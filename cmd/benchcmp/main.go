// Command benchcmp compares two BENCH_sim.json artifacts (see plumbench
// -exp bench) benchmark by benchmark and warns when the current run is
// slower than the baseline past a threshold.  CI runs it against the
// committed baseline on every push; the threshold is deliberately loose
// (shared runners are noisy — 2x, not 10%) so it catches structural
// regressions, not jitter.  Warnings use the GitHub Actions ::warning
// annotation format so they surface on the workflow run; -strict turns
// them into a non-zero exit for local bisection.  -md additionally
// writes the comparison as a GitHub-flavored markdown table — CI
// appends it to $GITHUB_STEP_SUMMARY so the run page shows the numbers
// without digging through logs.
//
// The comparison and both renderings live in internal/obs/diff
// (plumdiff folds the same tables into its combined report); this
// command is a thin flag-parsing wrapper.
//
// Usage: benchcmp [-threshold 2.0] [-strict] [-md out.md] baseline.json current.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"plum/internal/obs/diff"
)

func main() {
	threshold := flag.Float64("threshold", 2.0, "warn when current ns/op exceeds"+
		" baseline by this factor")
	strict := flag.Bool("strict", false, "exit non-zero on any warning")
	mdPath := flag.String("md", "", "also write the comparison as a markdown table to this"+
		" file (CI appends it to $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold f] [-strict] [-md out.md] baseline.json current.json")
		os.Exit(2)
	}
	bd, err := diff.CompareBenchFiles(flag.Arg(0), flag.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
	bd.WriteText(os.Stdout)
	bd.WriteAnnotations(os.Stdout)
	if *mdPath != "" {
		var md bytes.Buffer
		bd.WriteMarkdown(&md)
		if err := os.WriteFile(*mdPath, md.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: -md: %v\n", err)
			os.Exit(1)
		}
	}
	if bd.Warnings > 0 && *strict {
		os.Exit(1)
	}
}
