// Command benchcmp compares two BENCH_sim.json artifacts (see plumbench
// -exp bench) benchmark by benchmark and warns when the current run is
// slower than the baseline past a threshold.  CI runs it against the
// committed baseline on every push; the threshold is deliberately loose
// (shared runners are noisy — 2x, not 10%) so it catches structural
// regressions, not jitter.  Warnings use the GitHub Actions ::warning
// annotation format so they surface on the workflow run; -strict turns
// them into a non-zero exit for local bisection.  -md additionally
// writes the comparison as a GitHub-flavored markdown table — CI
// appends it to $GITHUB_STEP_SUMMARY so the run page shows the numbers
// without digging through logs.
//
// Usage: benchcmp [-threshold 2.0] [-strict] [-md out.md] baseline.json current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchResult mirrors plumbench's BenchResult; only the compared fields
// are declared so the two commands can evolve independently.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type benchReport struct {
	GitSHA     string        `json:"git_sha"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

func main() {
	threshold := flag.Float64("threshold", 2.0, "warn when current ns/op exceeds"+
		" baseline by this factor")
	strict := flag.Bool("strict", false, "exit non-zero on any warning")
	mdPath := flag.String("md", "", "also write the comparison as a markdown table to this"+
		" file (CI appends it to $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold f] [-strict] [-md out.md] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}

	baseline := make(map[string]benchResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fmt.Printf("benchcmp: baseline %s (git %s) vs current %s (git %s), threshold %.2fx\n",
		flag.Arg(0), orUnknown(base.GitSHA), flag.Arg(1), orUnknown(cur.GitSHA), *threshold)

	var md strings.Builder
	md.WriteString("### Benchmark comparison\n\n")
	fmt.Fprintf(&md, "Baseline `%s` vs current `%s`, threshold %.2fx.\n\n",
		orUnknown(base.GitSHA), orUnknown(cur.GitSHA), *threshold)
	md.WriteString("| benchmark | baseline ns/op | current ns/op | ratio | Δ allocs/op |\n")
	md.WriteString("|---|---:|---:|---:|---:|\n")

	warnings := 0
	for _, c := range cur.Benchmarks {
		b, ok := baseline[c.Name]
		if !ok {
			fmt.Printf("  %-28s (new — no baseline)\n", c.Name)
			fmt.Fprintf(&md, "| %s | — | %.0f | new | — |\n", c.Name, c.NsPerOp)
			continue
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = c.NsPerOp / b.NsPerOp
		}
		fmt.Printf("  %-28s %12.0f -> %12.0f ns/op  (%.2fx)\n", c.Name, b.NsPerOp, c.NsPerOp, ratio)
		mark := ""
		if ratio > *threshold {
			mark = " ⚠️"
		}
		fmt.Fprintf(&md, "| %s | %.0f | %.0f | %.2fx%s | %+.0f |\n",
			c.Name, b.NsPerOp, c.NsPerOp, ratio, mark, c.AllocsPerOp-b.AllocsPerOp)
		if ratio > *threshold {
			fmt.Printf("::warning title=benchmark regression::%s is %.2fx slower than"+
				" baseline (%.0f -> %.0f ns/op, threshold %.2fx)\n",
				c.Name, ratio, b.NsPerOp, c.NsPerOp, *threshold)
			warnings++
		}
	}
	for _, b := range base.Benchmarks {
		found := false
		for _, c := range cur.Benchmarks {
			if c.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("::warning title=benchmark missing::%s is in the baseline but not the"+
				" current run\n", b.Name)
			fmt.Fprintf(&md, "| %s | %.0f | — | missing ⚠️ | — |\n", b.Name, b.NsPerOp)
			warnings++
		}
	}
	if warnings > 0 {
		fmt.Fprintf(&md, "\n%d warning(s); ⚠️ marks benchmarks past the threshold or missing.\n", warnings)
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: -md: %v\n", err)
			os.Exit(1)
		}
	}
	if warnings > 0 && *strict {
		os.Exit(1)
	}
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}
