// Command plumserve is the fault-tolerant sweep-serving daemon: it
// accepts experiment requests over HTTP (POST /run), schedules each as
// a hermetic simulated world on a bounded worker pool, and streams
// NDJSON result rows back as epochs complete.  Identical requests
// collapse to one simulation (singleflight), completed results land in
// a crash-safe content-addressed cache, overload is shed with 429 +
// Retry-After, and SIGTERM drains gracefully: /readyz flips first,
// in-flight worlds finish (or are cancelled cooperatively at the drain
// deadline), and the cache index is flushed.
//
// Quickstart:
//
//	plumserve -addr 127.0.0.1:8080 -cache /tmp/plum-cache &
//	curl -s -d '{"p":8,"cycles":4,"mapper":"heu"}' http://127.0.0.1:8080/run
//
// The observability surface of plumbench -serve (/metrics, /runs,
// /spans, /diff, /healthz, /debug/pprof) is mounted on the same
// listener.
//
// -oneshot runs one request offline — no daemon, no cache — and prints
// the exact bytes the daemon would serve for it: the byte-identity
// oracle of the chaos harness and a debugging tool in its own right.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"plum/internal/core"
	"plum/internal/scenario"
	"plum/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entrypoint: 0 on success (including a clean
// drain), 1 on runtime failure, 2 on usage errors.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("plumserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheDir := fs.String("cache", "", "crash-safe result cache directory (default: no cache)")
	workers := fs.Int("workers", 0, "concurrently simulating worlds (default: GOMAXPROCS)")
	queue := fs.Int("queue", 0, "requests waiting beyond the workers before shedding"+
		" with 429 (default: 2x workers)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets"+
		" in-flight worlds finish before cancelling them cooperatively")
	reqTimeout := fs.Duration("timeout", 0, "default per-request deadline for requests"+
		" that name no timeout_seconds (0: none)")
	scenarioDir := fs.String("scenario-dir", "", "scenario corpus directory of *.json specs"+
		" requests may name (default: none loaded)")
	chaos := fs.Bool("chaos", false, "accept fault-injection requests (the \"chaos\" field);"+
		" for robustness testing only")
	paper := fs.Bool("paper", false, "serve paper-scale worlds (slower; default: reduced scale)")
	oneshot := fs.Bool("oneshot", false, "read one request JSON from stdin, run it offline,"+
		" print the exact response body the daemon would serve, and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "plumserve: unexpected arguments %q\n", fs.Args())
		fs.Usage()
		return 2
	}

	// The corpus loads before the harness: a bad corpus fails fast.
	var specs []*scenario.Spec
	if *scenarioDir != "" {
		var err error
		if specs, err = scenario.LoadDir(*scenarioDir); err != nil {
			fmt.Fprintf(stderr, "plumserve: -scenario-dir: %v\n", err)
			return 1
		}
	}

	fmt.Fprintln(stderr, "plumserve: building the experiment harness (global mesh + dual graph)...")
	exp := core.NewExperiments(*paper)

	if *oneshot {
		return runOneshot(exp, specs, *chaos, stdin, stdout, stderr)
	}

	srv, err := serve.NewServer(exp, serve.Config{
		CacheDir:       *cacheDir,
		Workers:        *workers,
		Queue:          *queue,
		DefaultTimeout: *reqTimeout,
		Scenarios:      specs,
		Chaos:          *chaos,
	})
	if err != nil {
		fmt.Fprintf(stderr, "plumserve: %v\n", err)
		return 1
	}

	// Bind synchronously so a bad address fails before advertising ready.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "plumserve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stderr, "plumserve: serving /run, /readyz, /metrics, /runs, /healthz on %s"+
		" (workers=%d, cache=%q, chaos=%v)\n", ln.Addr(), nw, *cacheDir, *chaos)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "plumserve: %v: draining (up to %v)...\n", sig, *drainTimeout)
		dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer dcancel()
		if err := srv.Drain(dctx); err != nil {
			fmt.Fprintf(stderr, "plumserve: drain: %v (stragglers cancelled)\n", err)
		}
		httpSrv.Close()
		fmt.Fprintln(stderr, "plumserve: drained")
		return 0
	case err := <-serveErr:
		fmt.Fprintf(stderr, "plumserve: %v\n", err)
		return 1
	}
}

// runOneshot is the offline replay: the same request decode, the same
// world runner, the same body rendering as the daemon — minus the
// daemon.  A served 200 body and the oneshot output of the same request
// are byte-identical; the chaos harness asserts exactly that.
func runOneshot(exp *core.Experiments, specs []*scenario.Spec, chaos bool, stdin io.Reader, stdout, stderr io.Writer) int {
	req, err := serve.ParseRequest(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "plumserve: -oneshot: bad request: %v\n", err)
		return 2
	}
	if req.Chaos != "" && !chaos {
		fmt.Fprintln(stderr, "plumserve: -oneshot: chaos requests need -chaos")
		return 2
	}
	byName := make(map[string]*scenario.Spec, len(specs))
	for _, sp := range specs {
		byName[sp.Name] = sp
	}
	ws, err := req.Spec(byName)
	if err != nil {
		fmt.Fprintf(stderr, "plumserve: -oneshot: bad request: %v\n", err)
		return 2
	}
	var rows []serve.Row
	run, err := exp.RunWorldCtx(context.Background(), ws, func(ep core.FeedbackEpoch) {
		rows = append(rows, serve.RowFromEpoch(ep))
	})
	if err != nil {
		fmt.Fprintf(stderr, "plumserve: -oneshot: %v\n", err)
		return 1
	}
	stdout.Write(serve.RenderBody(rows, run.SimTime, req.Digest()))
	return 0
}
