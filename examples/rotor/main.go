// Rotor: an unsteady adaptive computation in the style of the paper's
// motivating application — a rotor-blade acoustics simulation where the
// shock system moves through the domain, so the refined region (and the
// load) moves with it.
//
// The example runs several coupled solve -> adapt -> balance cycles of
// the full framework with an advancing cylindrical shock: each cycle
// refines around the new shock position, rebalances, and runs the
// edge-based flow kernel on the balanced mesh.  (Refinement dominates,
// as in the paper's experiments; examples/unsteady adds coarsening
// behind the shock via the high-level driver.)
//
// Run with: go run ./examples/rotor
package main

import (
	"fmt"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

func main() {
	const (
		p      = 8   // simulated processors
		steps  = 4   // adaption cycles (shock positions)
		iters  = 10  // solver iterations per cycle
		frac   = 0.1 // fraction of edges targeted per cycle
		lx, ly = 4.0, 2.0
	)
	global := mesh.Box(16, 8, 6, lx, ly, 1.2)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	cfg := core.DefaultConfig()
	cfg.ForceAccept = false // let the gain/cost model decide
	cfg.NAdapt = iters

	fmt.Printf("rotor-style unsteady adaption: %d elements, %d processors, %d cycles\n\n",
		global.NumElems(), p, steps)

	msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		ps := solver.NewParallel(d)
		ps.InitParallel(solver.GaussianPulse(mesh.Vec3{lx / 4, ly / 2, 0.6}, 0.5))

		for step := 0; step < steps; step++ {
			// The shock sweeps across the domain, as a blade tip vortex
			// would traverse the grid.
			x := lx * (0.25 + 0.5*float64(step)/float64(steps-1))
			ind := adapt.ShockCylinderIndicator(
				mesh.Vec3{x, ly / 2, 0}, mesh.Vec3{0, 0, 1}, 0.35, 0.18)

			gv := g.WithWeights(g.WComp, g.WRemap)
			st := core.AdaptionStep(c, d, gv, ind, frac, cfg)
			ps.Rebuild() // topology and ownership changed

			var work int
			for it := 0; it < iters; it++ {
				work += ps.Step(0.002)
			}
			maxWork := c.AllreduceInt64(int64(work), msg.MaxInt64)
			totWork := c.AllreduceInt64(int64(work), msg.SumInt64)
			mass := ps.GlobalMass()

			if c.Rank() == 0 {
				balance := float64(totWork) / float64(p) / float64(maxWork)
				fmt.Printf("cycle %d: shock at x=%.2f\n", step, x)
				fmt.Printf("  mesh: %d elements (imbalance before balancing %.2f, remap accepted: %v)\n",
					st.Counts.Elems, st.Imbalance, st.Accepted)
				fmt.Printf("  migrated %d elements; solver edge-work balance %.2f (1.0 = perfect)\n",
					st.Mig.ElemsSent, balance)
				fmt.Printf("  solver: %d edge fluxes/iter across %d ranks, mass diagnostic %.4f\n",
					int(totWork)/iters, p, mass)
			}
		}
	})
}
