// Machine models: what the simulated network topology changes.
//
// The paper's cost model is a flat IBM SP2 — every processor pair
// equidistant, every processor equally fast.  internal/machine replaces
// that with a Model interface and four machines (flat, smp, fattree,
// hetero).  This example shows the three effects end to end:
//
//  1. the same collective costs different simulated time per topology,
//  2. a heterogeneous machine skews per-rank compute time,
//  3. the topology-aware MapTopo mapper keeps migrated data on cheap
//     links where the paper's greedy mapper drags it across the machine.
//
// Run with: go run ./examples/machine
package main

import (
	"fmt"

	"plum/internal/machine"
	"plum/internal/msg"
	"plum/internal/remap"
)

const p = 8 // simulated processors

func main() {
	// 1. One broadcast + one allreduce, per topology.  The payload and
	// algorithm are identical; only the machine underneath changes.
	fmt.Printf("collective cost by topology (%d ranks, 4 KiB broadcast + allreduce):\n", p)
	base := msg.SP2Model()
	for _, name := range machine.Names() {
		topo, err := machine.ByName(name, p)
		if err != nil {
			panic(err)
		}
		times := msg.RunModel(p, base.WithTopo(topo), func(c *msg.Comm) {
			c.Bcast(0, make([]byte, 4096))
			c.AllreduceFloat64(float64(c.Rank()), msg.SumFloat64)
		})
		fmt.Printf("  %-8s makespan %.6fs\n", name, msg.MaxTime(times))
	}
	fmt.Println("  (smp beats flat: most tree edges stay inside a node;" +
		" fattree pays per-hop latency and shared up-links)")

	// 2. Heterogeneity: the same compute charge on two processor
	// generations.
	topo, _ := machine.ByName("hetero", p)
	times := msg.RunModel(p, base.WithTopo(topo), func(c *msg.Comm) {
		c.Compute(100000)
	})
	fmt.Printf("\nhetero machine, identical work per rank: rank0 %.4fs vs rank%d %.4fs\n",
		times[0], p-1, times[p-1])

	// 3. The mapper decision.  Processors 2, 3, 6, 7 keep their own
	// partitions (strong diagonal).  Partition 0's elements live on the
	// node-0 processors 2 and 3, partition 1's on the node-1 processors
	// 6 and 7; partitions 4 and 5 are freshly created refinement regions
	// with no resident data at all.  Whoever takes partitions 0 and 1
	// retains nothing, so the hop-oblivious greedy mapper places both by
	// fallback order — onto node 0 — and drags partition 1's elements
	// across the cluster switch.  MapTopo sees the hop distance and
	// keeps each partition in the node that already holds its data.
	smp := machine.NewSMPCluster(p, 4, machine.SMPIntraLink(), machine.SP2Link())
	s := remap.NewSimilarity(p, 1)
	for _, i := range []int{2, 3, 6, 7} {
		s.S[i][i] = 150
	}
	s.S[2][0], s.S[3][0] = 100, 100 // partition 0: data on node 0
	s.S[6][1], s.S[7][1] = 100, 100 // partition 1: data on node 1
	for _, m := range []struct {
		name   string
		assign []int32
	}{
		{"HeuMWBG", remap.HeuristicMWBG(s)},
		{"MapTopo", remap.TopoAssign(s, smp)},
	} {
		hc := remap.HopWeightedCost(s, m.assign, smp)
		fmt.Printf("\n%s assignment %v\n  hop-weighted MaxV %d, TotalV %d\n",
			m.name, m.assign, hc.MaxHV, hc.TotalHV)
	}
	fmt.Println("\nMapTopo's assignment moves the same elements fewer hops:" +
		" on an SMP cluster that is the difference between a memory copy" +
		" and a trip through the cluster switch")
}
