// Unsteady: the high-level driver API (core.Unsteady) on a moving-shock
// problem — the most compact way to adopt the full framework: construct
// a distributed mesh, describe the moving feature, and call Cycle().
// Coarsening releases the resolution the shock leaves behind, so the
// mesh tracks the feature instead of accumulating refinement.
//
// Run with: go run ./examples/unsteady
package main

import (
	"fmt"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/solver"
)

func main() {
	const (
		p      = 6
		cycles = 5
		lx, ly = 5.0, 2.0
	)
	global := mesh.Box(20, 8, 5, lx, ly, 1.25)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	cfg := core.DefaultConfig()
	cfg.NAdapt = 8
	cfg.ForceAccept = false

	fmt.Printf("unsteady driver: %d elements, %d processors, %d cycles\n",
		global.NumElems(), p, cycles)
	fmt.Printf("%-6s %-9s %-9s %-9s %-10s %-8s %-8s\n",
		"cycle", "elems", "migrated", "balance", "imbalance", "accept", "coarsened")

	msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		u := core.NewUnsteady(d, g, cfg)
		u.Frac = 0.10
		u.CoarsenBelow = 0.05
		u.Indicator = func(i int) func(mesh.Vec3) float64 {
			x := lx * (0.15 + 0.7*float64(i)/float64(cycles-1))
			return adapt.ShockCylinderIndicator(
				mesh.Vec3{x, ly / 2, 0}, mesh.Vec3{0, 0, 1}, 0.4, 0.2)
		}
		u.PS.InitParallel(solver.GaussianPulse(mesh.Vec3{lx / 4, ly / 2, 0.6}, 0.5))

		for i := 0; i < cycles; i++ {
			cs := u.Cycle()
			if c.Rank() == 0 {
				fmt.Printf("%-6d %-9d %-9d %-9.2f %-10.2f %-8v %-9d\n",
					i, cs.Step.Counts.Elems, cs.Step.Mig.ElemsSent,
					cs.WorkBalance, cs.Step.Imbalance, cs.Step.Accepted,
					cs.Coarsen.ElemsRemoved)
			}
		}
	})
}
