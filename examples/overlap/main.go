// Comm/compute overlap: what the event engine buys.
//
// The implicit workload's hot loop is a halo-exchange SpMV.  The
// blocking version ships the boundary values, waits, then computes all
// rows; the overlapped version posts the exchange nonblocking
// (Isend/Irecv), computes the interior rows — those touching no ghost
// column — while the messages are in flight, and only the boundary rows
// wait.  Both versions do bitwise-identical arithmetic (same per-row
// kernel, exact reductions), so the PCG iterates agree to the last bit;
// what changes is the simulated critical path, which this example
// extracts from the event trace per machine topology.
//
// The honest result: on the paper's flat SP2 the per-message software
// overhead (~40us setup + per-byte copy on both ends) dominates, halo
// arrivals always beat the receiver's own injection+copy timeline, and
// overlap buys nothing.  Where wire or shared-link time survives the
// overhead — the SMP cluster's inter-node links, the tapered fat tree's
// oversubscribed up-links — the comm wait on the critical path shrinks
// and the solve gets strictly faster.
//
// Run with: go run ./examples/overlap
package main

import (
	"fmt"

	"plum/internal/core"
	"plum/internal/event"
	"plum/internal/machine"
)

const p = 8 // simulated processors

func main() {
	e := core.NewExperiments(false)

	fmt.Printf("blocking vs overlapped PCG on %d simulated processors (one implicit step):\n\n", p)
	fmt.Printf("  %-8s %9s  %22s  %22s  %8s\n", "model", "PCG iters",
		"critical path (s)", "comm wait on path (s)", "speedup")
	fmt.Printf("  %-8s %9s  %10s %11s  %10s %11s\n", "", "",
		"blocking", "overlapped", "blocking", "overlapped")
	for _, r := range e.OverlapComparison(p, machine.Names()) {
		fmt.Printf("  %-8s %9d  %10.4f %11.4f  %10.4f %11.4f  %7.3fx\n",
			r.Model, r.Iters, r.CPBlocking, r.CPOverlap,
			r.WaitBlocking, r.WaitOverlap, r.Speedup())
	}
	fmt.Println("\n  (iterates are bitwise identical in both modes; only the schedule moves)")

	// Break the fat tree's overlapped run down along its critical path
	// and export the timeline for chrome://tracing / ui.perfetto.dev.
	if err := e.UseMachine("fattree"); err != nil {
		panic(err)
	}
	tr := e.TraceImplicitStep(p, true)
	cp := event.CriticalPath(tr)
	fmt.Printf("\nfattree overlapped run, critical path (ends on rank %d at %.4fs):\n", cp.EndRank, cp.Makespan)
	fmt.Printf("  compute %.4fs | message overhead %.4fs | comm wait %.4fs\n",
		cp.Compute, cp.Overhead, cp.CommWait)
	kinds := make(map[event.Kind]int)
	for _, s := range cp.Steps {
		kinds[s.Kind]++
	}
	fmt.Printf("  %d path steps: %d compute, %d send, %d recv\n",
		len(cp.Steps), kinds[event.KindCompute], kinds[event.KindSend], kinds[event.KindRecv])

	const out = "overlap-trace.json"
	if err := tr.WriteChromeFile(out); err != nil {
		panic(err)
	}
	fmt.Printf("\nwrote %s (%d events) — open it in chrome://tracing or ui.perfetto.dev\n",
		out, len(tr.Records))
}
