// Mappers: compares the three processor-reassignment algorithms of the
// paper's Section 4.4 — the O(E) greedy heuristic, the optimal maximally
// weighted bipartite matching (MWBG), and the optimal bottleneck maximum
// cardinality matching (BMCM) — on random and adversarial similarity
// matrices, reporting objective quality, data movement under both cost
// metrics, and wall-clock time.
//
// Run with: go run ./examples/mappers
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"plum/internal/remap"
	"plum/internal/report"
)

func main() {
	fmt.Println("processor reassignment mappers (paper Section 4.4)")
	fmt.Println()

	rng := rand.New(rand.NewSource(42))

	// Random dense matrices at growing P.
	t := report.NewTable("random similarity matrices (values in [0,1000))",
		"P", "Opt F", "Heu F", "Heu/Opt", "Opt Ctotal", "Heu Ctotal",
		"BMCM Cmax", "Opt Cmax", "Heu us", "Opt us", "BMCM us")
	for _, p := range []int{4, 8, 16, 32, 64} {
		s := remap.NewSimilarity(p, 1)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if rng.Float64() < 0.4 {
					s.S[i][j] = int64(rng.Intn(1000))
				}
			}
		}
		heu, heuT := timed(func() []int32 { return remap.HeuristicMWBG(s) })
		opt, optT := timed(func() []int32 { return remap.OptimalMWBG(s) })
		bmcm, bmcmT := timed(func() []int32 { return remap.OptimalBMCM(s, 1, 1) })
		ho := s.Objective(heu)
		oo := s.Objective(opt)
		t.AddRow(p, oo, ho, fmt.Sprintf("%.3f", float64(ho)/float64(oo+1)),
			remap.Cost(s, opt).CTotal, remap.Cost(s, heu).CTotal,
			remap.Cost(s, bmcm).CMax, remap.Cost(s, opt).CMax,
			heuT.Microseconds(), optT.Microseconds(), bmcmT.Microseconds())
	}
	t.Render(os.Stdout)

	// The adversarial family where greedy loses the most: a chain of
	// slightly decreasing weights that tempts the greedy into blocking
	// assignments.  The theorem guarantees it can never lose more than
	// half the objective.
	fmt.Println("adversarial chain matrices (greedy worst case):")
	t2 := report.NewTable("", "P", "Opt F", "Heu F", "ratio (>= 0.5 guaranteed)")
	for _, p := range []int{4, 8, 16} {
		s := remap.NewSimilarity(p, 1)
		// S[i][i] = 100, S[i][i+1] = 99: greedy takes the diagonal in
		// order; optimal can do no better here, so also try the shifted
		// variant where greedy's first pick blocks two good cells.
		for i := 0; i < p; i++ {
			s.S[i][i] = 99
			s.S[i][(i+1)%p] = 100
		}
		heu := remap.HeuristicMWBG(s)
		opt := remap.OptimalMWBG(s)
		ratio := float64(s.Objective(heu)) / float64(s.Objective(opt))
		t2.AddRow(p, s.Objective(opt), s.Objective(heu), fmt.Sprintf("%.3f", ratio))
	}
	t2.Render(os.Stdout)

	// F > 1: multiple partitions per processor (paper Section 4.3).
	fmt.Println("F > 1 (multiple partitions per processor):")
	t3 := report.NewTable("", "P", "F", "Opt F", "Heu F", "Heu Ctotal", "Opt Ctotal")
	for _, f := range []int{1, 2, 4} {
		p := 8
		s := remap.NewSimilarity(p, f)
		for i := 0; i < p; i++ {
			for j := 0; j < p*f; j++ {
				if rng.Float64() < 0.3 {
					s.S[i][j] = int64(rng.Intn(500))
				}
			}
		}
		heu := remap.HeuristicMWBG(s)
		opt := remap.OptimalMWBG(s)
		t3.AddRow(p, f, s.Objective(opt), s.Objective(heu),
			remap.Cost(s, heu).CTotal, remap.Cost(s, opt).CTotal)
	}
	t3.Render(os.Stdout)
}

func timed(f func() []int32) ([]int32, time.Duration) {
	start := time.Now()
	out := f()
	return out, time.Since(start)
}
