// Quickstart: the smallest end-to-end use of the PLUM reproduction.
//
// It builds a tetrahedral box mesh, runs one full load-balanced adaption
// cycle on four simulated processors (mark -> evaluate -> repartition ->
// reassign -> remap -> refine), and prints what happened at each stage.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
)

func main() {
	const p = 4 // simulated processors

	// 1. An initial mesh: a box split into tetrahedra, standing in for
	// the paper's rotor-blade mesh.
	global := mesh.Box(10, 8, 6, 2.0, 1.6, 1.2)
	fmt.Printf("initial mesh: %d vertices, %d elements, %d edges, %d boundary faces\n",
		global.NumVerts(), global.NumElems(), global.NumEdges(), global.NumBFaces())

	// 2. The dual graph drives all load balancing; its size never
	// changes, no matter how far the mesh is refined.
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())
	fmt.Printf("dual graph: %d vertices, %d edges; initial edge cut %d, imbalance %.3f\n",
		g.NumVerts(), g.NumEdges(), partition.EdgeCut(g, initPart), partition.Imbalance(g, initPart, p))

	// 3. An error indicator: a spherical "shock" in one corner, so the
	// refinement (and hence the load) is strongly localized.
	ind := adapt.SphericalIndicator(mesh.Vec3{0.5, 0.4, 0.3}, 0.35, 0.2)

	// 4. One adaption cycle under the framework, on p ranks.
	cfg := core.DefaultConfig()
	model := msg.SP2Model()
	msg.RunModel(p, model, func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, 0)
		gv := g.WithWeights(g.WComp, g.WRemap)
		st := core.AdaptionStep(c, d, gv, ind, 0.15, cfg)
		if c.Rank() != 0 {
			return
		}
		fmt.Printf("\nadaption cycle on %d processors:\n", p)
		fmt.Printf("  marking propagation rounds: %d\n", st.Rounds)
		fmt.Printf("  predicted imbalance before balancing: %.2f\n", st.Imbalance)
		fmt.Printf("  new partitioning accepted: %v\n", st.Accepted)
		fmt.Printf("  elements migrated: %d (in %d messages)\n", st.Mig.ElemsSent, st.Mig.MsgsSent)
		fmt.Printf("  refined mesh: %d elements (%d created)\n", st.Counts.Elems, st.Refine.ElemsCreated)
		fmt.Printf("  heaviest-rank load: %d -> %d (%.2fx solver improvement)\n",
			st.WOldMax, st.WNewMax, st.SolverImprovement())
		fmt.Printf("  simulated phase times: mark %.4fs, partition %.4fs, reassign %.4fs, remap %.4fs, refine %.4fs\n",
			st.MarkTime, st.PartitionTime, st.ReassignTime, st.RemapTime, st.RefineTime)
	})
}
