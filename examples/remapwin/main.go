// Remapwin: demonstrates the paper's key optimization (Section 4.6) —
// performing data remapping after the edge-marking phase but *before*
// mesh subdivision.  Because the refinement pattern is known exactly
// after marking, the balancer can partition for the post-refinement
// loads while physically moving only the small pre-refinement mesh.
//
// The example runs the identical adaption problem both ways and compares
// the volume of data moved, the simulated remapping time, and the
// balance of the subdivision phase itself.
//
// Run with: go run ./examples/remapwin
package main

import (
	"fmt"
	"os"

	"plum/internal/core"
	"plum/internal/report"
)

func main() {
	e := core.NewExperiments(false)
	fmt.Printf("remap-before vs remap-after subdivision (%d-element mesh)\n\n", e.Global.NumElems())

	t := report.NewTable("one adaption cycle, Real_2-style marking (33%)",
		"P", "ordering", "elems moved", "bytes moved", "remap time(s)",
		"refine time(s)", "total elems")
	for _, p := range []int{2, 4, 8, 16} {
		for _, before := range []bool{false, true} {
			st := e.RunStep(p, 0.33, before, core.MapHeuristic)
			name := "after"
			if before {
				name = "before"
			}
			t.AddRow(p, name, st.Mig.ElemsSent, st.Mig.BytesSent,
				fmt.Sprintf("%.4f", st.RemapTime), fmt.Sprintf("%.4f", st.RefineTime),
				st.Counts.Elems)
		}
	}
	t.Render(os.Stdout)

	fmt.Println("both orderings produce the identical refined mesh; moving the data")
	fmt.Println("first is cheaper by roughly the mesh growth factor, and the")
	fmt.Println("subdivision itself then runs load balanced (paper Section 4.6:")
	fmt.Println("\"almost a four-fold cost savings for data movement on the largest")
	fmt.Println("test case\").")
}
