// Implicit: the PCG-backed implicit workload (internal/linalg) driven
// through the full solve->adapt->balance cycle.  Where the explicit
// solver communicates once per time step, every PCG iteration performs
// a halo exchange and three global reductions, so the load balancer's
// communication metrics (edge cut, CommVolume) show up directly in the
// simulated solve time.  The PCG iteration counts printed here are
// bitwise independent of the processor count — run with any P and the
// convergence history is identical.
//
// Run with: go run ./examples/implicit
package main

import (
	"fmt"
	"os"

	"plum/internal/adapt"
	"plum/internal/core"
	"plum/internal/dual"
	"plum/internal/linalg"
	"plum/internal/mesh"
	"plum/internal/msg"
	"plum/internal/partition"
	"plum/internal/pmesh"
	"plum/internal/report"
	"plum/internal/solver"
)

func main() {
	const (
		p      = 4
		cycles = 3
		lx, ly = 4.0, 2.0
	)
	global := mesh.Box(10, 6, 4, lx, ly, 1.0)
	g := dual.FromMesh(global)
	initPart := partition.Partition(g, p, partition.Default())

	cfg := core.DefaultConfig()
	cfg.Workload = core.WorkloadImplicit
	cfg.NAdapt = 2 // implicit steps (each = NComp PCG solves) per cycle
	cfg.Implicit = solver.ImplicitOptions{
		DT: 0.5, Precond: linalg.PrecondSPAI, Tol: 1e-8, MaxIter: 500,
	}

	fmt.Printf("implicit workload: %d elements, %d processors, %d cycles, %s preconditioner\n\n",
		global.NumElems(), p, cycles, cfg.Implicit.Precond)
	fmt.Printf("%-6s %-8s %-9s %-10s %-10s %-9s %-8s\n",
		"cycle", "elems", "pcg-iters", "solve(s)", "balance", "migrated", "accept")

	var last []float64
	msg.RunModel(p, msg.SP2Model(), func(c *msg.Comm) {
		d := pmesh.New(c, global, initPart, solver.NComp)
		u := core.NewUnsteady(d, g, cfg)
		u.Frac = 0.12
		u.Indicator = func(i int) func(mesh.Vec3) float64 {
			x := lx * (0.25 + 0.5*float64(i)/float64(cycles))
			return adapt.ShockCylinderIndicator(
				mesh.Vec3{x, ly / 2, 0}, mesh.Vec3{0, 0, 1}, 0.4, 0.2)
		}
		u.PS.InitParallel(solver.GaussianPulse(mesh.Vec3{lx / 3, ly / 2, 0.5}, 0.5))

		for i := 0; i < cycles; i++ {
			cs := u.Cycle()
			if c.Rank() == 0 {
				fmt.Printf("%-6d %-8d %-9d %-10.4f %-10.3f %-9d %-8v\n",
					i, cs.Step.Counts.Elems, cs.PCGIters, cs.SolverTime,
					cs.WorkBalance, cs.Step.Mig.ElemsSent, cs.Step.Accepted)
			}
		}
		// One extra bare step to harvest a residual history for the plot.
		r := u.IS.Step()
		if c.Rank() == 0 {
			last = r.Residuals
		}
	})

	fmt.Println()
	report.Plot(os.Stdout, "PCG convergence (SPAI, last component solve)",
		"iteration", "log10 ||r||/||r0||",
		[]report.Series{report.ResidualSeries("spai", last)}, 10)
}
